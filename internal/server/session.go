package server

import (
	"container/heap"
	"encoding/json"
	"errors"
	"log/slog"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rfidraw/internal/engine"
	"rfidraw/internal/geom"
	"rfidraw/internal/obs"
	"rfidraw/internal/rfid"
	"rfidraw/internal/vote"
	"rfidraw/internal/wal"
)

// Lifecycle and admission errors, mapped onto HTTP statuses by http.go.
var (
	ErrSessionClosed   = errors.New("server: session closed")
	ErrSessionLimit    = errors.New("server: session limit reached")
	ErrSessionExists   = errors.New("server: session already exists")
	ErrSubscriberLimit = errors.New("server: subscriber limit reached")
	ErrBadSessionID    = errors.New("server: invalid session id")
	ErrNoSweep         = errors.New("server: session has no sweep interval yet")
	// ErrNoWAL reports a durability feature (retrace, ?from catch-up) on
	// a registry or session without a write-ahead log.
	ErrNoWAL = errors.New("server: session has no write-ahead log")
	// Control-plane verb errors (park/resume/drain), mapped by control.go.
	ErrUnknownSession = errors.New("server: unknown session")
	ErrNotLive        = errors.New("server: session is not live")
	ErrNotParked      = errors.New("server: session is not parked")
	ErrNotDurable     = errors.New("server: session has recorded nothing durable")
)

// Event is one item of a session's live output stream, serialized as one
// NDJSON line per event on the streaming API.
type Event struct {
	// Type is "point" (a trace point), "glyph" (a recognized stroke),
	// "drop" (the subscriber's queue overflowed and lost N events),
	// "tier" (the subscriber's trace tier changed — adaptive downgrade
	// or recovery), "stroke" (a T2 diagnostic: a stroke closed) or
	// "end" (the session closed; the stream ends after it).
	Type string `json:"type"`
	// Tag identifies the writer (EPC hex) for points and glyphs.
	Tag string `json:"tag,omitempty"`
	// T is the sample's stream time in nanoseconds (points, glyphs).
	T time.Duration `json:"t_ns,omitempty"`
	// X, Z are writing-plane coordinates in metres (points).
	X float64 `json:"x"`
	Z float64 `json:"z"`
	// Glyph is the recognized letter; Dist and Margin carry the DTW
	// classification confidence; Points is the stroke's sample count.
	Glyph  string  `json:"glyph,omitempty"`
	Dist   float64 `json:"dist,omitempty"`
	Margin float64 `json:"margin,omitempty"`
	Points int     `json:"points,omitempty"`
	// Confidence is the leading hypothesis's running mean vote at this
	// point (≤ 0, nearer 0 is better; it collapses on tracking loss),
	// Hypotheses how many candidate hypotheses are still active, and
	// Switched whether leadership changed here — the cursor may jump, so
	// stroke-building consumers should treat it as a pen lift (points).
	Confidence float64 `json:"confidence,omitempty"`
	Hypotheses int     `json:"hypotheses,omitempty"`
	Switched   bool    `json:"switched,omitempty"`
	// Seq, on points delivered by a WAL catch-up replay, is the log
	// sequence number of the report that produced the point; live points
	// omit it. ?from=seq catch-up requests are addressed in this space.
	Seq uint64 `json:"seq,omitempty"`
	// Dropped is how many events the subscriber lost (drop events).
	Dropped int `json:"dropped,omitempty"`
	// Tier and FromTier carry a tier transition (tier events): the
	// subscriber now receives Tier, having received FromTier. Reason is
	// "backlog" (adaptive downgrade) or "recovered" (hysteresis-gated
	// upgrade back toward the negotiated tier).
	Tier     int    `json:"tier,omitempty"`
	FromTier int    `json:"from,omitempty"`
	Reason   string `json:"reason,omitempty"`

	// minTier is the lowest trace tier that includes this event (0 ⊆ 1 ⊆
	// 2): 0 = dashboard-grade (decimated points, glyphs, end), 1 = the
	// full default stream, 2 = diagnostic detail only T2 subscribers see.
	// Classified once where the event is produced; the fan-out path
	// delivers the event to every subscriber whose tier >= minTier.
	// Unexported: invisible on the wire.
	minTier uint8
	// enq is the event's subscriber-enqueue stamp (obs monotonic nanos),
	// set by the broadcast path so the stream writer can observe the
	// queue-to-wire stage. Unexported: invisible on the wire.
	enq int64
	// wire carries the event's pre-marshaled encodings, produced exactly
	// once per broadcast for whichever encodings have attached
	// subscribers; every subscriber's stream writer shares the immutable
	// byte slices instead of re-marshaling. nil on events that bypass the
	// broadcast path (catch-up replays, per-subscriber drop notices) —
	// those writers fall back to marshaling locally. Unexported:
	// invisible on the wire.
	wire *eventWire
	// batchLen marks a group-commit carrier: an Event whose only meaning
	// is its wire field, holding batchLen consecutive events pre-encoded
	// as one contiguous byte run (see emitFlusher). Carriers exist only
	// on batched subscribers' queues — the wire bytes a stream writer
	// forwards are identical whether events travel one per queue item or
	// many — and weigh batchLen events in drop accounting. Zero on every
	// real event.
	batchLen int
}

// weight is the event's cost in drop accounting: carriers count the
// events they carry, everything else counts one.
func (ev *Event) weight() int {
	if ev.batchLen > 0 {
		return ev.batchLen
	}
	return 1
}

// MarshalJSON keeps the frozen T1 wire shape byte-for-byte for the
// pre-tier event types (they marshal through a plain alias of the same
// struct, tags and field order unchanged) while the new control and
// diagnostic events use compact shadows: a "tier" or "stroke" event
// never serializes the x/z plane coordinates a point carries, and a
// tier event's "tier" field survives even at tier 0.
func (ev Event) MarshalJSON() ([]byte, error) {
	switch ev.Type {
	case "tier":
		return json.Marshal(struct {
			Type   string `json:"type"`
			Tier   int    `json:"tier"`
			From   int    `json:"from"`
			Reason string `json:"reason,omitempty"`
		}{ev.Type, ev.Tier, ev.FromTier, ev.Reason})
	case "stroke":
		return json.Marshal(struct {
			Type   string        `json:"type"`
			Tag    string        `json:"tag,omitempty"`
			T      time.Duration `json:"t_ns,omitempty"`
			Points int           `json:"points,omitempty"`
		}{ev.Type, ev.Tag, ev.T, ev.Points})
	}
	type plain Event
	return json.Marshal(plain(ev))
}

// eventWire is one event's shared pre-marshaled encodings. The slices
// are immutable after broadcast: many subscriber writers read them
// concurrently with no copy.
type eventWire struct {
	// ndjson is one newline-terminated NDJSON line (byte-identical to
	// what json.Encoder.Encode writes).
	ndjson []byte
	// binary is one CRC-framed binary event frame (see eventwire.go).
	binary []byte
}

// burstEntry is one decoded report inside an ingest burst, paired with
// its per-report ingest-decode stamp so batching preserves per-report
// stage latency accounting.
type burstEntry struct {
	rep rfid.Report
	arr int64
}

// burstPool recycles burst slices between the ingest gateway (producer)
// and the session pump (consumer): the gateway fills a slice with up to
// IngestBurst decoded reports and enqueues it as ONE inbox item; the
// pump drains it and puts the slice back. Pooling keeps the burst path
// allocation-free in steady state.
var burstPool = sync.Pool{New: func() any { b := make([]burstEntry, 0, 64); return &b }}

// ingestItem is one message on a session's ingest inbox; exactly one of
// the fields is meaningful.
type ingestItem struct {
	// rep is one phase report (the single-report case).
	rep rfid.Report
	// arr is the report's ingest-decode stamp (obs monotonic nanos): the
	// pump observes arr→dequeue as the ingest stage.
	arr int64
	// burst is a batch of decoded reports entering as one channel
	// operation (burst-mode ingest); the pump returns the slice to
	// burstPool after handling every entry.
	burst *[]burstEntry
	// sweep, when positive, announces the reader cadence (from a Hello or
	// from session creation) and triggers lazy engine construction.
	sweep time.Duration
	// flush asks the pump to drain the reorder buffer and close the
	// engine's current sweeps, acking on the channel.
	flush chan struct{}
	// flushHead is flush plus a reply carrying the log head at the
	// drain boundary — the only head retrace may trust, since the pump
	// keeps appending the instant it moves on (see Retrace).
	flushHead chan uint64
	// catchup asks the pump to drain, then attach a WAL catch-up
	// subscriber at the resulting log head (see SubscribeFrom).
	catchup *catchupReq
	// results asks the pump for the engine's batch-equivalent trace
	// results (engines built with RecordTrace; equivalence tests).
	results chan []engine.TagResult
}

// catchupReq carries a pump-mediated catch-up attach: the pump drains so
// the log head exactly covers everything already emitted live, attaches
// the subscriber in catch-up mode, and acks with that head.
type catchupReq struct {
	sub  *Subscriber
	head chan uint64
}

// Subscriber is one attached consumer of a session's event stream.
type Subscriber struct {
	sess *Session
	ch   chan Event
	// binary marks a subscriber consuming the CRC-framed binary event
	// encoding; the broadcast path pre-marshals an encoding exactly once
	// per event when at least one attached subscriber wants it.
	binary bool
	// batched marks a subscriber on group-commit delivery (see
	// SubscribeOptions.Batched): its queue carries batch carriers from
	// the emit flusher instead of one item per event.
	batched bool
	// pendingDrops counts events lost since the last successfully
	// delivered drop notice; guarded by the session's emitMu.
	pendingDrops int
	drops        int64

	// Tier state (guarded by the session's emitMu). tier is the trace
	// tier currently served; maxTier is what the subscriber negotiated at
	// attach — adaptive downgrade steps tier below maxTier under backlog
	// and hysteresis steps it back up, never past maxTier. calmFlushes
	// counts consecutive deliveries with the backlog below the upgrade
	// threshold; downgrades counts adaptive steps down.
	tier        uint8
	maxTier     uint8
	calmFlushes int
	downgrades  int64

	// Catch-up state (all guarded by the session's emitMu). While
	// catchingUp, live events are parked in pending (bounded, drop-oldest)
	// and the WAL replay goroutine owns ch: it delivers the replayed
	// prefix, splices pending, and is the one closer of ch. cancel (only
	// set on catch-up subscribers) tells that goroutine to stop.
	catchingUp bool
	pending    []Event
	cancel     chan struct{}
}

// Events is the subscriber's bounded delivery queue. It is closed when
// the session ends or the subscriber detaches.
func (sub *Subscriber) Events() <-chan Event { return sub.ch }

// Drops reports how many events this subscriber has lost to the
// slow-consumer policy.
func (sub *Subscriber) Drops() int64 {
	sub.sess.emitMu.Lock()
	defer sub.sess.emitMu.Unlock()
	return sub.drops
}

// Tier reports the trace tier the subscriber is currently served at
// (0..2); it can sit below the negotiated tier while the adaptive
// downgrade policy has it stepped down.
func (sub *Subscriber) Tier() int {
	sub.sess.emitMu.Lock()
	defer sub.sess.emitMu.Unlock()
	return int(sub.tier)
}

// Downgrades reports how many adaptive tier step-downs this subscriber
// has taken.
func (sub *Subscriber) Downgrades() int64 {
	sub.sess.emitMu.Lock()
	defer sub.sess.emitMu.Unlock()
	return sub.downgrades
}

// Close detaches the subscriber from its session. Safe to call more than
// once and after the session closed.
func (sub *Subscriber) Close() { sub.sess.detach(sub) }

// stroke accumulates one tag's in-progress stroke for glyph recognition.
type stroke struct {
	pts  []geom.Vec2
	last time.Duration
	// n counts the stroke's points for T0 decimation: every
	// t0DecimateEvery-th point (and always the first) is classified into
	// tier 0, so a dashboard tracing the decimated stream still renders
	// every stroke from its first sample.
	n int
}

// Session binds one client's tag-set to a tracking engine and fans its
// live output to subscribers. All ingest flows through a single pump
// goroutine (satisfying the engine's single-ingest-goroutine contract);
// output events are emitted from engine shard goroutines under emitMu.
type Session struct {
	ID      string
	Created time.Time
	// geometry names the session's antenna geometry (deploy registry
	// name, "" = default), fixed at open and threaded to the engine
	// factory, the WAL meta, and every replay.
	geometry string
	// search is the session's effective vote-search override (nil =
	// deployment default), fixed at open, recorded in the WAL meta, and
	// applied to recovery, retrace and catch-up replays alike so every
	// rebuild runs the search the live engine ran.
	search *vote.SearchConfig
	// walPolicy is the session's durability policy from its spec.
	walPolicy WALPolicy
	// resumeFrom, when nonzero, marks this session as the resumption of
	// a parked record: the log reopens for append and sequence numbers
	// continue from this head.
	resumeFrom uint64

	reg *Registry

	inbox    chan ingestItem
	quit     chan struct{}
	pumpDone chan struct{}

	// lastActive is the idle-GC clock (unix nanos), touched by ingest,
	// reader attach and subscriber attach.
	lastActive atomic.Int64

	// mu guards lifecycle state: closed, closing, recovered, readers.
	mu     sync.Mutex
	closed bool
	// closing marks the session claimed by idle expiry: the registry set
	// it atomically (under mu AND emitMu, with no readers or subscribers
	// attached) before starting the teardown, so attach paths refuse
	// instead of binding to a session mid-teardown. Because it is only
	// ever written with both locks held, holding either suffices to read.
	closing bool
	// recovered marks a session serving from its retained WAL only: no
	// pump, no engine, no ingest — rehydrated at startup or parked by
	// idle expiry. quitOpen records whether quit still needs closing
	// (false for sessions born recovered, whose quit starts closed).
	recovered bool
	quitOpen  bool
	readers   map[net.Conn]struct{}
	// closeOnce runs the shutdown exactly once; later Close calls wait.
	closeOnce sync.Once

	// emitMu guards subscribers and stroke state, written from engine
	// shard goroutines (OnUpdate) and the pump. subsClosed flips when
	// Close sweeps the subscriber table, so a racing Subscribe cannot
	// add a queue nobody will ever close. replayAttachable gates WAL
	// catch-up attaches on recovered sessions (their live table is
	// already swept).
	emitMu           sync.Mutex
	subs             map[*Subscriber]struct{}
	subsClosed       bool
	replayAttachable bool
	strokes          map[string]*stroke
	// plainSubs / batchedSubs count the attached subscribers by delivery
	// mode (guarded by emitMu) so the per-event broadcast path can skip a
	// whole fan-out mode — including its O(subscribers) loop — when no
	// subscriber uses it.
	plainSubs   int
	batchedSubs int
	// Group-commit state (guarded by emitMu except the channels): events
	// bound for batched subscribers accumulate in emitBuf; emitKick (cap
	// 1) nudges the emitFlusher goroutine, which swaps the buffer against
	// emitSpare, encodes the batch once per needed encoding and delivers
	// one carrier per subscriber. emitQuit/emitDone sequence the final
	// drain into Close, after the pump's end event and before the
	// subscriber sweep. All nil on recovered sessions (no flusher).
	emitBuf   []Event
	emitSpare []Event
	emitKick  chan struct{}
	emitQuit  chan struct{}
	emitDone  chan struct{}
	// emitPace is the flusher's fan-out-aware accumulation window in
	// nanoseconds (atomic: written under emitMu, read by the flusher
	// before locking). Delivering a carrier costs every batched
	// subscriber a wake and a socket write, so at wide fan-out the
	// flusher waits this long after a kick before committing, letting
	// the batch grow and amortizing the per-subscriber cost; at small
	// fan-out the window rounds to zero and every event flushes
	// immediately.
	emitPace atomic.Int64

	// pump-owned state (no locking: single goroutine).
	eng     *engine.Engine
	sweep   time.Duration
	reorder reportHeap
	maxSeen time.Duration
	pushSeq uint64
	// log is the session's write-ahead record of the canonical
	// resequenced report stream (nil without a data dir); engineDirty
	// tracks whether any report reached the engine since the last drain,
	// making drains — and their logged flush records — idempotent.
	log         *wal.Log
	engineDirty bool

	// walSeq is the log's head sequence number: incremented by the pump
	// as it appends, read by retrace and catch-up snapshots.
	walSeq atomic.Uint64
	// walBytes mirrors the log's on-disk size (pump refreshes it with the
	// stats snapshot) for the cost meter's WAL-bandwidth rate.
	walBytes atomic.Int64
	// cost turns the session's counters into demand rates (see cost.go).
	cost costMeter
	// sweepNs mirrors the pump's sweep cadence for non-pump readers
	// (retrace and catch-up need it to rebuild the pipeline).
	sweepNs atomic.Int64

	// statsMu guards the last engine stats snapshot the pump refreshes.
	statsMu   sync.Mutex
	lastStats []engine.TagStats

	// counters (atomic: read by HTTP handlers and metrics).
	reports atomic.Int64
	points  atomic.Int64
	glyphs  atomic.Int64
	drops   atomic.Int64
	// tierDowngrades counts adaptive tier step-downs across the session's
	// subscribers: the fan-out pressure signal the cost meter turns into
	// a demand rate for admission.
	tierDowngrades atomic.Int64
	searchEvals    atomic.Int64
	resyncs        atomic.Int64
	outOfOrder     atomic.Int64
	// reorderLate counts reports that arrived after their reorder-window
	// slot had already been released to the engine: the resequencer can
	// no longer place them before already-delivered later reports, so
	// they reach the engine late (clock skew beyond ReorderWindow).
	reorderLate atomic.Int64
	// hypothesis-set sums over the session's tags, refreshed with the
	// stats snapshot: active hypotheses (gauge) plus cumulative leader
	// switches and retirements.
	hypotheses     atomic.Int64
	leaderSwitches atomic.Int64
	retirements    atomic.Int64

	// logger carries the session-scoped structured logger.
	logger *slog.Logger
	// stripe spreads this session's histogram stamps across the shared
	// pipeline's counter stripes.
	stripe int
	// timeline is the session's bounded diagnostic event ring; it
	// survives park/resume (carried through resumeState).
	timeline *obs.Timeline
	// spans retains sampled stage-by-stage report traces (trace_sample_n
	// control knob; GET /v1/sessions/{id}/trace).
	spans *obs.SpanRing
	// openSpan is the in-flight sampled span: the pump publishes it at
	// reorder release, the emitting shard goroutine completes it.
	openSpan atomic.Pointer[obs.Span]
	// lastArrival/lastRelease hand the most recently released report's
	// stamps to onUpdate, which swaps them to zero so each release is
	// observed once in the emit and end-to-end histograms.
	lastArrival atomic.Int64
	lastRelease atomic.Int64
	// sampleCount is the pump's report counter for 1-in-N span sampling.
	sampleCount uint64
	// walSegs tracks the log's segment count so rotations surface on the
	// timeline (pump-owned).
	walSegs int
}

// pumpTick is the pump's housekeeping period: idle detection (drain +
// sweep close after ~2 silent ticks) and stats refresh cadence.
const pumpTick = 50 * time.Millisecond

// statsEvery refreshes the engine stats snapshot every N pump ticks.
const statsEvery = 10

// resumeState carries what a resumed session inherits from the parked
// record it continues: the retained log head its sequence numbers pick
// up after, and the original creation time.
type resumeState struct {
	from    uint64
	created time.Time
	// timeline, when non-nil, is the parked record's diagnostic ring: the
	// resumed session keeps appending to it so the park/resume history
	// reads as one timeline.
	timeline *obs.Timeline
}

func newSession(reg *Registry, spec SessionSpec, resume resumeState) *Session {
	s := &Session{
		ID:         spec.ID,
		Created:    time.Now(),
		geometry:   spec.Geometry,
		search:     spec.Search,
		walPolicy:  spec.WAL,
		resumeFrom: resume.from,
		reg:        reg,
		inbox:      make(chan ingestItem, reg.cfg.IngestBuffer),
		quit:       make(chan struct{}),
		quitOpen:   true,
		pumpDone:   make(chan struct{}),
		readers:    map[net.Conn]struct{}{},
		subs:       map[*Subscriber]struct{}{},
		strokes:    map[string]*stroke{},
		logger:     reg.logger.With("session", spec.ID),
		stripe:     reg.nextStripe(),
		timeline:   resume.timeline,
		spans:      &obs.SpanRing{},
		emitKick:   make(chan struct{}, 1),
		emitQuit:   make(chan struct{}),
		emitDone:   make(chan struct{}),
	}
	if s.timeline == nil {
		s.timeline = &obs.Timeline{}
	}
	if resume.from > 0 {
		if !resume.created.IsZero() {
			s.Created = resume.created
		}
		s.walSeq.Store(resume.from)
		s.timeline.Record(obs.EventResume, "from_seq="+strconv.FormatUint(resume.from, 10))
	} else {
		s.timeline.Record(obs.EventCreate, "geometry="+spec.Geometry)
	}
	s.touch()
	go s.pump(spec.Sweep)
	go s.emitFlusher()
	return s
}

// newRecoveredSession rehydrates a closed-but-retained session from its
// WAL at daemon startup: a registry entry with no pump and no engine,
// addressable for retrace and ?from catch-up replay.
func newRecoveredSession(reg *Registry, meta wal.Meta, stats wal.Stats) *Session {
	quit := make(chan struct{})
	close(quit)
	pumpDone := make(chan struct{})
	close(pumpDone)
	s := &Session{
		ID:               meta.ID,
		Created:          meta.Created,
		geometry:         meta.Geometry,
		search:           searchFromMeta(meta.Search),
		reg:              reg,
		quit:             quit,
		pumpDone:         pumpDone,
		closed:           true,
		recovered:        true,
		replayAttachable: true,
		subsClosed:       true,
		readers:          map[net.Conn]struct{}{},
		subs:             map[*Subscriber]struct{}{},
		logger:           reg.logger.With("session", meta.ID),
		stripe:           reg.nextStripe(),
		timeline:         &obs.Timeline{},
		spans:            &obs.SpanRing{},
	}
	s.timeline.Record(obs.EventRecover, "last_seq="+strconv.FormatUint(stats.LastSeq, 10))
	s.walSeq.Store(stats.LastSeq)
	s.sweepNs.Store(int64(meta.Sweep))
	s.reports.Store(int64(stats.Reports))
	s.touch()
	return s
}

// Geometry names the session's antenna geometry ("" = default).
func (s *Session) Geometry() string { return s.geometry }

// Search returns a copy of the session's vote-search override (nil =
// deployment default).
func (s *Session) Search() *vote.SearchConfig {
	if s.search == nil {
		return nil
	}
	cp := *s.search
	return &cp
}

// searchToMeta / searchFromMeta map a session's search override onto
// the WAL meta encoding (Mode 0 = none, 1 = hierarchical, 2 = dense):
// the record must carry the search it was traced under, or recovery and
// retrace would rebuild a different pipeline than the live engine ran.
func searchToMeta(sc *vote.SearchConfig) wal.SearchMeta {
	if sc == nil {
		return wal.SearchMeta{}
	}
	m := wal.SearchMeta{TopK: uint8(sc.TopK), Levels: uint8(sc.Levels)}
	if sc.Mode == vote.SearchDense {
		m.Mode = 2
	} else {
		m.Mode = 1
	}
	return m
}

func searchFromMeta(m wal.SearchMeta) *vote.SearchConfig {
	if m.Mode == 0 {
		return nil
	}
	sc := &vote.SearchConfig{TopK: int(m.TopK), Levels: int(m.Levels)}
	if m.Mode == 2 {
		sc.Mode = vote.SearchDense
	}
	return sc
}

// Recovered reports whether the session serves from its retained WAL
// only (no live pump or engine).
func (s *Session) Recovered() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Closing reports whether idle expiry has claimed the session and its
// teardown is in flight (but not yet parked or removed).
func (s *Session) Closing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closing && !s.recovered
}

// State names the session's lifecycle phase for the control API.
func (s *Session) State() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.recovered:
		return "recovered"
	case s.closed, s.closing:
		return "closed"
	default:
		return "live"
	}
}

// touch refreshes the idle clock.
func (s *Session) touch() { s.lastActive.Store(time.Now().UnixNano()) }

// idleSince returns the last-activity time.
func (s *Session) idleSince() time.Time { return time.Unix(0, s.lastActive.Load()) }

// Offer feeds one phase report into the session. It blocks for
// backpressure when the inbox is full and fails once the session closes.
// Reports should be non-decreasing in time per reader; cross-reader skew
// up to the reorder window is resequenced.
func (s *Session) Offer(rep rfid.Report) error {
	return s.enqueue(ingestItem{rep: rep, arr: obs.Now()})
}

// OfferBatch feeds a batch of phase reports as a single inbox operation:
// one channel hop for the whole burst instead of one per report. The
// batch is copied into a pooled burst slice, so the caller keeps
// ownership of reps. Ordering, reorder-window resequencing and stage
// stamps are identical to offering each report individually.
func (s *Session) OfferBatch(reps []rfid.Report) error {
	if len(reps) == 0 {
		return nil
	}
	bp := burstPool.Get().(*[]burstEntry)
	buf := (*bp)[:0]
	now := obs.Now()
	for _, rep := range reps {
		buf = append(buf, burstEntry{rep: rep, arr: now})
	}
	*bp = buf
	if err := s.enqueue(ingestItem{burst: bp}); err != nil {
		*bp = (*bp)[:0]
		burstPool.Put(bp)
		return err
	}
	return nil
}

// enqueue pushes one ingest item, preferring the closed signal over the
// buffered inbox so post-close offers fail deterministically.
func (s *Session) enqueue(it ingestItem) error {
	select {
	case <-s.quit:
		return ErrSessionClosed
	default:
	}
	select {
	case s.inbox <- it:
		return nil
	case <-s.quit:
		return ErrSessionClosed
	}
}

// announceSweep tells the session its reader cadence (idempotent; the
// first announcement builds the engine).
func (s *Session) announceSweep(sweep time.Duration) error {
	if sweep <= 0 {
		return ErrNoSweep
	}
	return s.enqueue(ingestItem{sweep: sweep})
}

// Flush drains the reorder buffer and closes the engine's current sweeps,
// emitting any final positions. It blocks until the pump has done so.
// Flush is idempotent and safe to race the pump's own idle drain and
// Close: with nothing ingested since the previous drain it is a no-op
// (each sweep closes exactly once — see drain and the realtime tracker's
// own flush guard).
func (s *Session) Flush() error {
	ack := make(chan struct{})
	if err := s.enqueue(ingestItem{flush: ack}); err != nil {
		return err
	}
	select {
	case <-ack:
		return nil
	case <-s.pumpDone:
		return ErrSessionClosed
	}
}

// SubscribeTier names the trace tier a subscriber negotiates at attach.
// The zero value is the full default stream (T1), so existing callers
// keep today's stream untouched.
type SubscribeTier int

const (
	// TierDefault is the unnegotiated default: the full T1 stream.
	TierDefault SubscribeTier = iota
	// Tier0 is the dashboard-grade stream: decimated positions plus
	// glyphs and the end marker.
	Tier0
	// Tier1 is the full default stream, explicitly requested.
	Tier1
	// Tier2 is T1 plus the diagnostic detail events (stroke closures).
	Tier2
)

// level maps the negotiated tier onto the internal 0..2 tier space.
func (t SubscribeTier) level() uint8 {
	switch t {
	case Tier0:
		return 0
	case Tier2:
		return 2
	default:
		return 1
	}
}

// Adaptive downgrade policy: a subscriber whose queue fill crosses
// downgradeBacklog at a delivery steps down one tier (shedding stream
// weight instead of dropping events); a fill at or below upgradeBacklog
// for upgradeAfterCalm consecutive deliveries steps back up toward the
// negotiated tier. The wide hysteresis band keeps a consumer hovering
// near its capacity from flapping.
const (
	downgradeBacklog = 0.75
	upgradeBacklog   = 0.25
	upgradeAfterCalm = 64
)

// SubscribeOptions configures a subscriber attach.
type SubscribeOptions struct {
	// Buffer bounds the delivery queue; <= 0 takes the registry default.
	Buffer int
	// Binary subscribes to the CRC-framed binary event encoding: the
	// broadcast path pre-marshals binary frames (exactly once per event)
	// for this subscriber's stream writer to share.
	Binary bool
	// Batched opts into group-commit delivery: instead of one queue item
	// per event, the session's emit flusher coalesces events into
	// batches, encodes each batch exactly once per encoding and delivers
	// one opaque carrier per batch (shared immutable bytes, one channel
	// operation per subscriber per batch). The wire bytes are identical;
	// only the queue framing changes. Strictly for stream writers that
	// forward pre-encoded bytes (the HTTP stream handler): carriers have
	// no decoded fields, so in-process consumers reading Events() must
	// leave this unset.
	Batched bool
	// Tier selects the trace tier (T0 decimated / T1 full / T2
	// diagnostic); the zero value is T1, today's stream exactly. Slow
	// subscribers are adaptively stepped below the negotiated tier and
	// back (see the downgrade policy constants), each transition
	// announced in-stream as a "tier" event.
	Tier SubscribeTier
}

// Subscribe attaches a bounded-queue consumer to the session's live
// stream. buffer <= 0 takes the registry default. Subscribers beyond the
// per-session cap are refused (load shedding, HTTP 503 upstream), as are
// attaches to a session idle expiry has already claimed.
func (s *Session) Subscribe(buffer int) (*Subscriber, error) {
	return s.SubscribeOpts(SubscribeOptions{Buffer: buffer})
}

// SubscribeOpts is Subscribe with the full option set (queue bound,
// wire encoding).
func (s *Session) SubscribeOpts(o SubscribeOptions) (*Subscriber, error) {
	buffer := o.Buffer
	if buffer <= 0 {
		buffer = s.reg.cfg.SubscriberQueue
	}
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	if s.subsClosed || s.closing {
		return nil, ErrSessionClosed
	}
	if len(s.subs) >= s.reg.cfg.MaxSubscribers {
		s.timeline.Record(obs.EventShed, "subscriber limit "+strconv.Itoa(s.reg.cfg.MaxSubscribers))
		return nil, ErrSubscriberLimit
	}
	tier := o.Tier.level()
	sub := &Subscriber{
		sess: s, ch: make(chan Event, buffer),
		binary: o.Binary, batched: o.Batched,
		tier: tier, maxTier: tier,
	}
	s.addSubLocked(sub)
	s.touch()
	return sub, nil
}

// addSubLocked / removeSubLocked keep the subscriber table and the
// per-delivery-mode counts in one place. Requires emitMu.
func (s *Session) addSubLocked(sub *Subscriber) {
	if sub.batched {
		// Anything already buffered for group commit predates this attach
		// — and, for a pump-mediated catch-up attach, is covered by the
		// WAL head the subscriber will replay from. Flush it to the
		// existing subscribers first, so the newcomer's stream starts
		// strictly at its attach point (no pre-attach events, no
		// replay duplicates).
		s.flushEmitLocked()
	}
	s.subs[sub] = struct{}{}
	if sub.batched {
		s.batchedSubs++
		s.updateEmitPaceLocked()
	} else {
		s.plainSubs++
	}
	s.reg.metrics.SubscribersActive.Add(1)
	s.reg.metrics.TierSubscribers[sub.tier].Add(1)
}

func (s *Session) removeSubLocked(sub *Subscriber) {
	delete(s.subs, sub)
	if sub.batched {
		s.batchedSubs--
		s.updateEmitPaceLocked()
	} else {
		s.plainSubs--
	}
	s.reg.metrics.SubscribersActive.Add(-1)
	s.reg.metrics.TierSubscribers[sub.tier].Add(-1)
}

// updateEmitPaceLocked re-derives the flusher's accumulation window
// from the batched-subscriber count. Requires emitMu.
func (s *Session) updateEmitPaceLocked() {
	pace := time.Duration(s.batchedSubs) * emitPacePerSub
	if pace > emitPaceMax {
		pace = emitPaceMax
	}
	s.emitPace.Store(int64(pace))
}

// maybeRetuneTierLocked applies the adaptive tier policy to one
// subscriber at a delivery: a backlog past the downgrade threshold steps
// it down a tier immediately (the next batch is already encoded for the
// cheaper tier), a sustained calm backlog steps it back up toward the
// tier it negotiated. Requires emitMu.
func (s *Session) maybeRetuneTierLocked(sub *Subscriber) {
	fill := float64(len(sub.ch)) / float64(cap(sub.ch))
	switch {
	case fill >= downgradeBacklog && sub.tier > 0:
		s.setTierLocked(sub, sub.tier-1, "backlog")
	case fill <= upgradeBacklog && sub.tier < sub.maxTier:
		if sub.calmFlushes++; sub.calmFlushes >= upgradeAfterCalm {
			s.setTierLocked(sub, sub.tier+1, "recovered")
		}
	default:
		sub.calmFlushes = 0
	}
}

// setTierLocked moves a subscriber to a new tier: the transition is
// announced in-stream as a "tier" control event (no shared wire — the
// stream writer marshals it locally), recorded on the session timeline,
// exported as metrics, and counted into the session's fan-out pressure
// signal for the cost meter. Requires emitMu.
func (s *Session) setTierLocked(sub *Subscriber, tier uint8, reason string) {
	from := sub.tier
	if tier == from {
		return
	}
	sub.tier = tier
	sub.calmFlushes = 0
	s.reg.metrics.TierSubscribers[from].Add(-1)
	s.reg.metrics.TierSubscribers[tier].Add(1)
	if tier < from {
		sub.downgrades++
		s.tierDowngrades.Add(1)
		s.reg.metrics.TierDowngrades.Add(1)
	} else {
		s.reg.metrics.TierUpgrades.Add(1)
	}
	s.timeline.Record(obs.EventTierChange,
		"tier "+strconv.Itoa(int(from))+"->"+strconv.Itoa(int(tier))+" ("+reason+")")
	s.sendLocked(sub, Event{Type: "tier", Tier: int(tier), FromTier: int(from), Reason: reason})
}

// TierDowngrades reports the session's cumulative adaptive tier
// step-downs across all its subscribers.
func (s *Session) TierDowngrades() int64 { return s.tierDowngrades.Load() }

// detach removes a subscriber, closing its queue exactly once. A
// subscriber still catching up is signalled instead: its replay
// goroutine owns the queue and closes it on the way out.
func (s *Session) detach(sub *Subscriber) {
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	if _, ok := s.subs[sub]; !ok {
		return
	}
	s.removeSubLocked(sub)
	if sub.catchingUp {
		close(sub.cancel)
		return
	}
	close(sub.ch)
}

// Subscribers reports the attached consumer count.
func (s *Session) Subscribers() int {
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	return len(s.subs)
}

// addReader registers an ingest connection so session close also closes
// the wire. Attaches to a session idle expiry has claimed are refused —
// the connection must not be bound to an engine mid-teardown.
func (s *Session) addReader(conn net.Conn) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.closing {
		return ErrSessionClosed
	}
	s.readers[conn] = struct{}{}
	s.touch()
	return nil
}

func (s *Session) removeReader(conn net.Conn) {
	s.mu.Lock()
	delete(s.readers, conn)
	s.mu.Unlock()
}

// Readers reports the connected reader count.
func (s *Session) Readers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.readers)
}

// claimExpiry atomically claims an idle-expirable session for teardown:
// holding BOTH lifecycle locks it re-checks the expiry conditions (no
// recent activity, no readers, no subscribers) and, if they hold, marks
// the session closing so every attach path refuses from this instant on.
// This closes the check-then-close race where an ingest attach or a new
// subscriber landing between an expiry check and the teardown was bound
// to a session mid-teardown: now either the attach wins (and the claim
// fails, leaving the session alive) or the claim wins (and the attach is
// refused with ErrSessionClosed).
func (s *Session) claimExpiry(now time.Time, idle time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	if s.closed || s.closing || s.recovered {
		return false
	}
	if now.Sub(s.idleSince()) <= idle {
		return false
	}
	if len(s.readers) > 0 || len(s.subs) > 0 {
		return false
	}
	s.closing = true
	return true
}

// claimPark atomically claims a live session for parking. Unlike
// claimExpiry it ignores activity, readers and subscribers — parking is
// deliberate load shedding, so attached consumers are disconnected —
// but like it, once the claim lands every attach path refuses, so
// nothing binds to the session mid-teardown.
func (s *Session) claimPark() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	if s.closed || s.closing || s.recovered {
		return false
	}
	s.closing = true
	return true
}

// enterRecovered parks a fully closed WAL-backed session in the
// recovered state: retained in the registry, addressable for retrace and
// catch-up replay, holding no engine or goroutines.
func (s *Session) enterRecovered() {
	s.mu.Lock()
	s.recovered = true
	s.mu.Unlock()
	s.emitMu.Lock()
	s.replayAttachable = true
	s.emitMu.Unlock()
}

// closeRecovered tears a recovered session down: refuses further
// catch-up attaches and cancels in-flight ones. It exists apart from
// Close because an expiry-parked session already consumed its closeOnce
// on the way into the recovered state. Idempotent.
func (s *Session) closeRecovered() {
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	s.replayAttachable = false
	for sub := range s.subs {
		s.removeSubLocked(sub)
		if sub.catchingUp {
			close(sub.cancel)
			continue
		}
		close(sub.ch)
	}
}

// Close tears the session down: stops the pump (which drains pending
// ingest, flushes and closes the engine), disconnects readers, emits a
// final "end" event and closes every subscriber queue. It is idempotent
// and safe to call concurrently; every caller returns after the shutdown
// has completed.
func (s *Session) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		quitOpen := s.quitOpen
		s.quitOpen = false
		conns := make([]net.Conn, 0, len(s.readers))
		for c := range s.readers {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		if quitOpen {
			close(s.quit)
		}
		for _, c := range conns {
			c.Close()
		}
		<-s.pumpDone
		// The pump's final "end" event is in the group-commit buffer;
		// retire the flusher (it drains on the way out) before sweeping
		// the subscriber table, so batched subscribers get everything —
		// end included — ahead of their queues closing.
		if s.emitQuit != nil {
			close(s.emitQuit)
			<-s.emitDone
		}
		s.emitMu.Lock()
		s.subsClosed = true
		s.replayAttachable = false
		for sub := range s.subs {
			s.removeSubLocked(sub)
			if sub.catchingUp {
				// The catch-up replay goroutine owns the queue; tell it
				// to stop and let it close the channel.
				close(sub.cancel)
				continue
			}
			close(sub.ch)
		}
		s.emitMu.Unlock()
		// Roll the final counts into the monotonic retired counters
		// (the pump's quit path refreshed them just before closing the
		// engine); Swap prevents double-counting with a concurrent
		// /metrics sum.
		s.reg.metrics.SearchEvalsRetired.Add(s.searchEvals.Swap(0))
		s.reg.metrics.LeaderSwitchesRetired.Add(s.leaderSwitches.Swap(0))
		s.reg.metrics.RetirementsRetired.Add(s.retirements.Swap(0))
		s.hypotheses.Store(0)
		s.reg.metrics.SessionsClosed.Add(1)
	})
	<-s.pumpDone
}

// pump is the session's single ingest goroutine: it owns the engine, the
// reorder buffer and the idle-drain logic.
func (s *Session) pump(sweep time.Duration) {
	defer close(s.pumpDone)
	if sweep > 0 {
		s.handleSweep(sweep)
	}
	ticker := time.NewTicker(pumpTick)
	defer ticker.Stop()
	idleTicks, ticks := 0, 0
	for {
		select {
		case it := <-s.inbox:
			idleTicks = 0
			s.handle(it)
		case <-ticker.C:
			idleTicks++
			ticks++
			if idleTicks == 2 {
				// ~100 ms of ingest silence: the stream paused or ended.
				// Drain the reorder buffer, close open sweeps so the last
				// positions reach subscribers, and finalize idle strokes.
				s.drain()
				s.finalizeStrokes()
			}
			if ticks%statsEvery == 0 {
				s.refreshStats()
			}
		case <-s.quit:
			for {
				select {
				case it := <-s.inbox:
					s.handle(it)
					continue
				default:
				}
				break
			}
			s.drain()
			// Final stats snapshot BEFORE closing the engine: Stats on a
			// closed engine returns nil, which would zero the counters
			// just before Close rolls them into the retired totals.
			s.refreshStats()
			if s.eng != nil {
				s.eng.Close()
			}
			if s.log != nil {
				// Clean close marker + compaction: the session's record
				// is retained on disk for recovery and retrace.
				if err := s.log.Close(s.walSeq.Add(1)); err != nil {
					s.logger.Error("wal close failed", "err", err)
				}
				s.log = nil
			}
			s.finalizeStrokes()
			s.broadcast(Event{Type: "end"})
			return
		}
	}
}

func (s *Session) handle(it ingestItem) {
	switch {
	case it.burst != nil:
		// A whole ingest burst in one inbox item: feed the reorder buffer
		// and engine without further channel hops, then recycle the slice.
		for _, e := range *it.burst {
			s.handleReport(e.rep, e.arr)
		}
		s.reg.pipeline.ObserveBurst(len(*it.burst))
		*it.burst = (*it.burst)[:0]
		burstPool.Put(it.burst)
	case it.sweep > 0:
		s.handleSweep(it.sweep)
	case it.flush != nil:
		s.drain()
		s.finalizeStrokes()
		s.refreshStats()
		close(it.flush)
	case it.flushHead != nil:
		s.drain()
		s.finalizeStrokes()
		s.refreshStats()
		it.flushHead <- s.walSeq.Load()
	case it.catchup != nil:
		// Drain first so the log head the subscriber snapshots exactly
		// covers everything already emitted to live subscribers: every
		// event after the attach derives from records past the head.
		s.drain()
		s.emitMu.Lock()
		if s.subsClosed {
			s.emitMu.Unlock()
			close(it.catchup.head) // session closing; caller sees 0/closed
			return
		}
		s.addSubLocked(it.catchup.sub)
		s.emitMu.Unlock()
		s.touch()
		it.catchup.head <- s.walSeq.Load()
	case it.results != nil:
		s.drain()
		if s.eng == nil {
			it.results <- nil
			return
		}
		it.results <- s.eng.TraceResults()
	default:
		s.handleReport(it.rep, it.arr)
	}
}

// handleSweep builds the engine on the first cadence announcement;
// later announcements (reader reconnects) keep the original cadence.
// With a WAL store configured, the session's log opens here — the sweep
// cadence is part of its meta, and reports cannot reach the engine (or
// the log) before it is known.
func (s *Session) handleSweep(sweep time.Duration) {
	if s.eng != nil {
		return
	}
	eng, err := s.reg.cfg.NewEngine(sweep, s.geometry, s.search, s.onUpdate)
	if err != nil {
		s.logger.Error("engine build failed", "err", err)
		return
	}
	s.eng, s.sweep = eng, sweep
	s.sweepNs.Store(int64(sweep))
	if st := s.reg.cfg.WAL; st != nil && !s.walPolicy.Disable {
		meta := wal.Meta{
			ID: s.ID, Created: s.Created, Sweep: sweep,
			Geometry: s.geometry, Search: searchToMeta(s.search),
		}
		over := wal.Overrides{SyncEvery: s.walPolicy.SyncEvery}
		var log *wal.Log
		if s.resumeFrom > 0 {
			// Resuming a parked record: reopen for append — never
			// truncate — so the retained prefix and everything the resumed
			// session logs replay as one stream.
			log, err = st.AppendTo(meta, over)
		} else {
			log, err = st.CreateWith(meta, over)
		}
		if err != nil {
			s.logger.Error("wal open failed", "err", err)
			return
		}
		s.log = log
		s.walBytes.Store(log.Bytes())
		s.walSegs = log.Segments()
	}
}

// handleReport resequences one report through the reorder heap and offers
// everything older than the hold window to the engine in time order.
// arr is the report's ingest-decode stamp (zero when the report entered
// through a path that does not stamp, e.g. tests driving enqueue).
func (s *Session) handleReport(rep rfid.Report, arr int64) {
	s.touch()
	s.reports.Add(1)
	s.reg.metrics.Reports.Add(1)
	now := obs.Now()
	if arr > 0 {
		s.reg.pipeline.ObserveStage(obs.StageIngest, now-arr, s.stripe)
	}
	if s.eng == nil {
		// No cadence announced yet (defensive: the gateway always sends
		// the Hello first). Drop rather than grow without bound.
		return
	}
	hold := s.reg.cfg.ReorderWindow
	if s.maxSeen >= hold && rep.Time <= s.maxSeen-hold {
		// The resequencer already released this report's time slot: later
		// reports have been delivered, so it will reach the engine out of
		// order (a reader's clock runs behind by more than the window).
		// It is still delivered — and logged — so live and replay stay
		// identical; the counter is the visibility the window breach
		// otherwise lacks.
		s.reorderLate.Add(1)
		s.reg.metrics.ReorderLate.Add(1)
	}
	s.pushSeq++
	heap.Push(&s.reorder, orderedReport{rep: rep, seq: s.pushSeq, arr: arr, pushed: now})
	if rep.Time > s.maxSeen {
		s.maxSeen = rep.Time
	}
	for s.reorder.Len() > 0 && s.reorder.min().Time <= s.maxSeen-hold {
		s.offerToEngine(heap.Pop(&s.reorder).(orderedReport))
	}
}

// drain releases the whole reorder buffer and closes current sweeps. It
// is idempotent: with nothing buffered and nothing offered since the
// previous drain it does nothing — in particular it does not log a
// flush record, so racing drain paths (the pump's idle tick, an explicit
// client Flush, session close) close each sweep exactly once, live and
// in the WAL replay alike.
func (s *Session) drain() {
	for s.reorder.Len() > 0 {
		s.offerToEngine(heap.Pop(&s.reorder).(orderedReport))
	}
	if s.eng == nil || !s.engineDirty {
		return
	}
	s.engineDirty = false
	if err := s.eng.Flush(); err != nil {
		s.logger.Warn("engine flush failed", "err", err)
	}
	if s.log != nil {
		if err := s.log.AppendFlush(s.walSeq.Add(1)); err != nil {
			s.walFailed(err)
		}
	}
}

// offerToEngine hands one resequenced report to the engine, recording it
// in the WAL first: the log is written after the reorder buffer, so it
// is the canonical stream — exactly what the engine consumes, in the
// order it consumes it. Each hand-off stamps the reorder, WAL-append and
// engine-offer stages, and 1-in-N reports open a sampled span that the
// emitting shard goroutine completes.
func (s *Session) offerToEngine(or orderedReport) {
	release := obs.Now()
	s.reg.pipeline.ObserveStage(obs.StageReorder, release-or.pushed, s.stripe)
	if s.log != nil {
		if err := s.log.AppendReport(s.walSeq.Add(1), or.rep); err != nil {
			s.walFailed(err)
		}
	}
	walDone := obs.Now()
	s.reg.pipeline.ObserveStage(obs.StageWALAppend, walDone-release, s.stripe)
	s.engineDirty = true
	if err := s.eng.Offer(or.rep); err != nil {
		s.logger.Warn("engine offer failed", "err", err)
	}
	offerDone := obs.Now()
	s.reg.pipeline.ObserveStage(obs.StageEngineOffer, offerDone-walDone, s.stripe)
	// Hand the release to the emit path; the shard goroutine that next
	// produces positions swaps these back to zero so the emit and
	// end-to-end histograms see each release window once.
	if or.arr > 0 {
		s.lastArrival.Store(or.arr)
	}
	s.lastRelease.Store(offerDone)
	s.sampleCount++
	if n := s.reg.traceSampleN.Load(); n > 0 && s.sampleCount%uint64(n) == 0 {
		sp := &obs.Span{
			Seq:       s.walSeq.Load(),
			T:         int64(or.rep.Time),
			Wall:      time.Now().UnixNano(),
			IngestNs:  or.pushed - or.arr,
			ReorderNs: release - or.pushed,
			WALNs:     walDone - release,
			OfferNs:   offerDone - walDone,
			Arrival:   or.arr,
			Release:   offerDone,
		}
		if or.arr == 0 {
			sp.IngestNs = 0
			sp.Arrival = or.pushed
		}
		if old := s.openSpan.Swap(sp); old != nil {
			// The previous sampled report never produced an emission
			// (aggregated away); record it without emit/total timing.
			s.spans.Add(*old)
		}
	}
}

// walFailed abandons a session's log after a write error: tracing
// continues, durability for this session stops (and is surfaced), rather
// than spamming a failing disk on every report.
func (s *Session) walFailed(err error) {
	s.logger.Error("wal append failed; disabling durability for this session", "err", err)
	s.log.Abandon()
	s.log = nil
	s.reg.metrics.WALFailures.Add(1)
}

// refreshStats snapshots per-tag engine stats (pump-only, per the
// engine's Stats contract) for the HTTP info endpoint and the
// search-evals metric.
func (s *Session) refreshStats() {
	if s.log != nil {
		s.walBytes.Store(s.log.Bytes())
		if segs := s.log.Segments(); segs > s.walSegs {
			s.timeline.Record(obs.EventWALRotate, "segments="+strconv.Itoa(segs))
			s.walSegs = segs
		}
	}
	if s.eng == nil {
		return
	}
	stats := s.eng.Stats()
	var evals, hyps, switches, retire int64
	for _, st := range stats {
		evals += int64(st.SearchEvals)
		hyps += int64(st.Hypotheses)
		switches += int64(st.LeaderSwitches)
		retire += int64(st.Retirements)
	}
	s.searchEvals.Store(evals)
	s.hypotheses.Store(hyps)
	s.leaderSwitches.Store(switches)
	s.retirements.Store(retire)
	s.statsMu.Lock()
	s.lastStats = stats
	s.statsMu.Unlock()
}

// Spans returns the session's retained sampled spans, oldest first.
func (s *Session) Spans() []obs.Span { return s.spans.Snapshot() }

// SpanTotal counts every span the session ever sampled.
func (s *Session) SpanTotal() uint64 { return s.spans.Total() }

// Events returns the session's diagnostic timeline, oldest first.
func (s *Session) Events() []obs.TimelineEvent { return s.timeline.Snapshot() }

// EventTotal counts every timeline event ever recorded.
func (s *Session) EventTotal() uint64 { return s.timeline.Total() }

// LastEvent returns the most recent timeline event, if any.
func (s *Session) LastEvent() (obs.TimelineEvent, bool) { return s.timeline.Last() }

// TagStats returns the last per-tag stats snapshot.
func (s *Session) TagStats() []engine.TagStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return append([]engine.TagStats(nil), s.lastStats...)
}

// onUpdate receives live positions from engine shard goroutines: it
// advances per-tag stroke state and broadcasts point events.
func (s *Session) onUpdate(u engine.Update) {
	now := obs.Now()
	if rel := s.lastRelease.Swap(0); rel > 0 {
		s.reg.pipeline.ObserveStage(obs.StageEmit, now-rel, s.stripe)
	}
	if arr := s.lastArrival.Swap(0); arr > 0 {
		s.reg.pipeline.ObserveE2E(now-arr, s.stripe)
	}
	if sp := s.openSpan.Swap(nil); sp != nil {
		sp.EmitNs = now - sp.Release
		sp.TotalNs = now - sp.Arrival
		s.spans.Add(*sp)
	}
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	st := s.strokes[u.Tag]
	if st == nil {
		st = &stroke{}
		s.strokes[u.Tag] = st
	}
	for _, p := range u.Positions {
		// A leadership switch re-bases the trajectory on a different
		// hypothesis; the jump is not pen movement, so close the stroke.
		if len(st.pts) > 0 && (p.Time-st.last > s.reg.cfg.GlyphGap || p.Switched) {
			s.finalizeStrokeLocked(u.Tag, st)
		}
		if p.Switched {
			s.timeline.Record(obs.EventLeaderSwitch, "tag="+u.Tag)
		}
		st.pts = append(st.pts, p.Pos)
		st.last = p.Time
		st.n++
		s.points.Add(1)
		s.reg.metrics.Points.Add(1)
		// Classify the point's tier once, here: most points are T1-only,
		// but every t0DecimateEvery-th point of a stroke (starting with
		// its first) also reaches the decimated T0 stream, so a dashboard
		// still draws every stroke's shape at ~1/8 the point weight.
		minTier := uint8(1)
		if st.n%t0DecimateEvery == 1 {
			minTier = 0
		}
		s.broadcastLocked(Event{
			Type: "point", Tag: u.Tag, T: p.Time, X: p.Pos.X, Z: p.Pos.Z,
			Confidence: p.Confidence, Hypotheses: p.Hypotheses, Switched: p.Switched,
			minTier: minTier,
		})
	}
}

// finalizeStrokes closes every in-progress stroke (idle pause or session
// end) and emits their glyphs.
func (s *Session) finalizeStrokes() {
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	for tag, st := range s.strokes {
		s.finalizeStrokeLocked(tag, st)
	}
}

// finalizeStrokeLocked classifies one completed stroke against the glyph
// font and emits a glyph event, plus a T2 diagnostic "stroke" event on
// every closure (deterministic: it fires whether or not the stroke was
// long enough to classify). Requires emitMu.
func (s *Session) finalizeStrokeLocked(tag string, st *stroke) {
	pts := st.pts
	last := st.last
	st.pts, st.last, st.n = nil, 0, 0
	if len(pts) > 0 {
		s.broadcastLocked(Event{
			Type: "stroke", Tag: tag, T: last, Points: len(pts),
			minTier: 2,
		})
	}
	if len(pts) < s.reg.cfg.GlyphMinPoints || s.reg.rec == nil {
		return
	}
	cls, err := s.reg.rec.Classify(pts)
	if err != nil {
		return
	}
	s.glyphs.Add(1)
	s.reg.metrics.Glyphs.Add(1)
	s.broadcastLocked(Event{
		Type: "glyph", Tag: tag, T: last,
		Glyph: string(cls.Rune), Dist: cls.Distance, Margin: cls.Margin,
		Points: len(pts),
	})
}

// broadcast emits one event to every subscriber.
func (s *Session) broadcast(ev Event) {
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	s.broadcastLocked(ev)
}

// broadcastLocked delivers an event to every subscriber queue with the
// slow-consumer policy: when a queue is full, the oldest event is dropped
// to make room — freshness beats completeness for a live cursor — and the
// loss is surfaced to the consumer as a "drop" event once space allows.
// Each encoding with at least one attached subscriber is marshaled
// exactly once here; subscribers' stream writers fan out the shared
// immutable bytes instead of re-marshaling per subscriber. Requires
// emitMu.
func (s *Session) broadcastLocked(ev Event) {
	ev.enq = obs.Now()
	// Batched subscribers are group-committed: the event joins the emit
	// buffer for the flusher to batch-encode and deliver as one carrier
	// per batch, turning O(events × subscribers) channel operations into
	// O(batches × subscribers). The emitting goroutine only flushes
	// inline when the backlog tops emitBatchMax.
	if s.batchedSubs > 0 {
		s.emitBuf = append(s.emitBuf, ev)
		if len(s.emitBuf) >= emitBatchMax {
			s.flushEmitLocked()
		} else {
			select {
			case s.emitKick <- struct{}{}:
			default:
			}
		}
	}
	if s.plainSubs == 0 {
		return
	}
	// Retune each plain subscriber's tier against its backlog, then scan
	// for the encodings some subscriber at an including tier wants. An
	// event's bytes are tier-independent — tiers differ only in which
	// events they include — so one marshal per encoding still serves
	// every tier.
	var needJSON, needBinary bool
	for sub := range s.subs {
		if sub.batched {
			continue
		}
		if !sub.catchingUp {
			s.maybeRetuneTierLocked(sub)
		}
		if sub.tier < ev.minTier {
			continue
		}
		if sub.binary {
			needBinary = true
		} else {
			needJSON = true
		}
	}
	if needJSON || needBinary {
		w := &eventWire{}
		if needJSON {
			// json.Marshal plus the trailing newline is byte-identical to
			// what json.Encoder.Encode writes, so NDJSON consumers cannot
			// tell shared bytes from a per-subscriber encode. A marshal
			// failure (impossible for Event's field types) leaves the
			// writer's marshal-locally fallback in charge.
			if b, err := json.Marshal(&ev); err == nil {
				w.ndjson = append(b, '\n')
			}
		}
		if needBinary {
			w.binary = appendEventFrame(nil, &ev)
		}
		ev.wire = w
	}
	for sub := range s.subs {
		if sub.batched || sub.tier < ev.minTier {
			continue
		}
		if sub.catchingUp {
			s.parkLocked(sub, ev)
			continue
		}
		s.sendLocked(sub, ev)
	}
}

// emitBatchMax bounds the group-commit backlog: past this many buffered
// events the emitting goroutine flushes inline rather than let the
// buffer grow while the flusher is behind.
const emitBatchMax = 1024

// Fan-out pacing: each flush bills every batched subscriber roughly a
// goroutine wake plus a socket write, so the flusher's accumulation
// window scales with the subscriber count (emitPacePerSub each), capped
// at emitPaceMax so a wide fan-out still sees fresh data, and windows
// under emitPaceMin are skipped entirely — small fan-outs keep today's
// flush-every-event latency.
const (
	emitPacePerSub = 30 * time.Microsecond
	emitPaceMin    = 250 * time.Microsecond
	emitPaceMax    = 30 * time.Millisecond
)

// t0DecimateEvery is T0's point decimation factor: one point in this
// many per stroke (always including the first) reaches the decimated
// tier. Catch-up replays decimate in WAL-sequence space with the same
// factor.
const t0DecimateEvery = 8

// emitFlusher is the session's group-commit goroutine: kicked by
// broadcastLocked whenever events are buffered for batched subscribers,
// it flushes the buffer as one batch. While it encodes and delivers a
// batch, later events pile into the next one — batch size adapts to
// load, and an idle stream still flushes every event immediately.
func (s *Session) emitFlusher() {
	defer close(s.emitDone)
	for {
		select {
		case <-s.emitKick:
		case <-s.emitQuit:
			s.emitMu.Lock()
			s.flushEmitLocked()
			s.emitMu.Unlock()
			return
		}
		// Fan-out pacing: let the batch accumulate for a window sized to
		// what delivering it will cost, unless the session is closing —
		// then commit immediately.
		if pace := s.emitPace.Load(); pace >= int64(emitPaceMin) {
			t := time.NewTimer(time.Duration(pace))
			select {
			case <-t.C:
			case <-s.emitQuit:
				t.Stop()
				s.emitMu.Lock()
				s.flushEmitLocked()
				s.emitMu.Unlock()
				return
			}
		}
		s.emitMu.Lock()
		s.flushEmitLocked()
		s.emitMu.Unlock()
	}
}

// flushEmitLocked group-commits the buffered events per tier: each
// drained batch is marshaled at most once per (tier, encoding) some
// batched subscriber is actually served at — unsubscribed tiers cost
// nothing — with each event's bytes encoded once per encoding and shared
// across every tier run that includes it (tiers differ only in which
// events they include, never in an event's bytes, so T1's byte-run stays
// byte-identical to the pre-tier stream). Every batched subscriber gets
// one carrier pointing at its tier's shared immutable run. Requires
// emitMu; the tier retune, scan, encode and delivery share the one
// critical section, so a delivered carrier always matches the tier and
// encoding of every subscriber it reaches.
func (s *Session) flushEmitLocked() {
	batch := s.emitBuf
	if len(batch) == 0 {
		return
	}
	s.emitBuf = s.emitSpare[:0]
	s.emitSpare = batch
	// Retune tiers first, so this batch is encoded for the tier each
	// subscriber will actually be served at, then collect per-tier
	// encoding demand.
	var needJSON, needBinary [3]bool
	any := false
	for sub := range s.subs {
		if !sub.batched {
			continue
		}
		if !sub.catchingUp {
			s.maybeRetuneTierLocked(sub)
		}
		if sub.binary {
			needBinary[sub.tier] = true
		} else {
			needJSON[sub.tier] = true
		}
		any = true
	}
	if !any {
		return // every batched subscriber detached; nothing owes these bytes
	}
	var wires [3]*eventWire
	for t := range wires {
		if needJSON[t] || needBinary[t] {
			wires[t] = &eventWire{}
		}
	}
	var counts [3]int
	for i := range batch {
		ev := &batch[i]
		var js, bin []byte
		for t := int(ev.minTier); t < len(wires); t++ {
			w := wires[t]
			if w == nil {
				continue
			}
			counts[t]++
			if needJSON[t] {
				if js == nil {
					if b, err := json.Marshal(ev); err == nil {
						js = append(b, '\n')
					} else {
						js = []byte{} // unmarshalable (impossible): skip, don't retry
					}
				}
				w.ndjson = append(w.ndjson, js...)
			}
			if needBinary[t] {
				if bin == nil {
					bin = appendEventFrame(nil, ev)
				}
				w.binary = append(w.binary, bin...)
			}
		}
	}
	// One carrier per populated tier; its enqueue stamp is the batch's
	// OLDEST event, so the write-stage histogram sees the worst
	// queue-to-wire latency in the batch, not the friendliest. A tier no
	// event in this batch reaches (e.g. T0 over a run of undecimated
	// points) delivers nothing.
	var carriers [3]Event
	for t := range carriers {
		if wires[t] != nil && counts[t] > 0 {
			carriers[t] = Event{enq: batch[0].enq, batchLen: counts[t], wire: wires[t]}
		}
	}
	for sub := range s.subs {
		if !sub.batched {
			continue
		}
		carrier := carriers[sub.tier]
		if carrier.batchLen == 0 {
			continue
		}
		if sub.catchingUp {
			s.parkLocked(sub, carrier)
			continue
		}
		s.sendLocked(sub, carrier)
	}
}

// parkLocked holds a live event (or carrier) for a subscriber still
// catching up: its queue belongs to the WAL replay goroutine until the
// splice, so live output parks in pending (bounded, drop-oldest) for
// delivery right after the replayed prefix. Requires emitMu.
func (s *Session) parkLocked(sub *Subscriber, ev Event) {
	if len(sub.pending) >= cap(sub.ch) {
		n := sub.pending[0].weight()
		sub.pending = sub.pending[1:]
		sub.pendingDrops += n
		sub.drops += int64(n)
		s.drops.Add(int64(n))
		s.reg.metrics.EventsDropped.Add(int64(n))
	}
	sub.pending = append(sub.pending, ev)
}

// sendLocked delivers one event to one subscriber queue with the
// drop-oldest policy and loss notices. Requires emitMu.
func (s *Session) sendLocked(sub *Subscriber, ev Event) {
	if sub.pendingDrops > 0 {
		notice := Event{Type: "drop", Dropped: sub.pendingDrops}
		select {
		case sub.ch <- notice:
			sub.pendingDrops = 0
		default:
		}
	}
	select {
	case sub.ch <- ev:
		return
	default:
	}
	// Queue full: evict the oldest item, then retry once. Items weigh
	// their event count — evicting a batch carrier loses every event in
	// it, and the drop notice says so.
	select {
	case old := <-sub.ch:
		n := int64(old.weight())
		sub.pendingDrops += int(n)
		sub.drops += n
		s.drops.Add(n)
		s.reg.metrics.EventsDropped.Add(n)
	default:
	}
	select {
	case sub.ch <- ev:
	default:
		n := int64(ev.weight())
		sub.pendingDrops += int(n)
		sub.drops += n
		s.drops.Add(n)
		s.reg.metrics.EventsDropped.Add(n)
	}
}

// orderedReport is one reorder-buffer entry: the report plus its arrival
// sequence within the session (the final tie-breaker) and its obs stamps
// (ingest decode, heap push) for stage timing.
type orderedReport struct {
	rep    rfid.Report
	seq    uint64
	arr    int64
	pushed int64
}

// reportHeap is a min-heap of reports by (time, reader ID, arrival
// order): the session's small cross-reader resequencing buffer. The tie
// levels matter — container/heap is not stable, so ordering by time
// alone pops identically-stamped reports in heap-shape-dependent order,
// and two readers stamping the same timestamp could make a live trace
// diverge from an otherwise identical run (and the per-tag merge order
// feed trackers differently). With ties broken by reader ID then arrival
// sequence the pop order is a deterministic function of the input: the
// stable sort of the arrival stream by (time, reader ID).
type reportHeap []orderedReport

func (h reportHeap) Len() int { return len(h) }
func (h reportHeap) Less(i, j int) bool {
	if h[i].rep.Time != h[j].rep.Time {
		return h[i].rep.Time < h[j].rep.Time
	}
	if h[i].rep.ReaderID != h[j].rep.ReaderID {
		return h[i].rep.ReaderID < h[j].rep.ReaderID
	}
	return h[i].seq < h[j].seq
}
func (h reportHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *reportHeap) Push(x any)      { *h = append(*h, x.(orderedReport)) }
func (h reportHeap) min() rfid.Report { return h[0].rep }
func (h *reportHeap) Pop() any {
	old := *h
	n := len(old)
	rep := old[n-1]
	*h = old[:n-1]
	return rep
}
