package server

import (
	"container/heap"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rfidraw/internal/engine"
	"rfidraw/internal/geom"
	"rfidraw/internal/rfid"
)

// Lifecycle and admission errors, mapped onto HTTP statuses by http.go.
var (
	ErrSessionClosed   = errors.New("server: session closed")
	ErrSessionLimit    = errors.New("server: session limit reached")
	ErrSessionExists   = errors.New("server: session already exists")
	ErrSubscriberLimit = errors.New("server: subscriber limit reached")
	ErrBadSessionID    = errors.New("server: invalid session id")
	ErrNoSweep         = errors.New("server: session has no sweep interval yet")
)

// Event is one item of a session's live output stream, serialized as one
// NDJSON line per event on the streaming API.
type Event struct {
	// Type is "point" (a trace point), "glyph" (a recognized stroke),
	// "drop" (the subscriber's queue overflowed and lost N events) or
	// "end" (the session closed; the stream ends after it).
	Type string `json:"type"`
	// Tag identifies the writer (EPC hex) for points and glyphs.
	Tag string `json:"tag,omitempty"`
	// T is the sample's stream time in nanoseconds (points, glyphs).
	T time.Duration `json:"t_ns,omitempty"`
	// X, Z are writing-plane coordinates in metres (points).
	X float64 `json:"x"`
	Z float64 `json:"z"`
	// Glyph is the recognized letter; Dist and Margin carry the DTW
	// classification confidence; Points is the stroke's sample count.
	Glyph  string  `json:"glyph,omitempty"`
	Dist   float64 `json:"dist,omitempty"`
	Margin float64 `json:"margin,omitempty"`
	Points int     `json:"points,omitempty"`
	// Confidence is the leading hypothesis's running mean vote at this
	// point (≤ 0, nearer 0 is better; it collapses on tracking loss),
	// Hypotheses how many candidate hypotheses are still active, and
	// Switched whether leadership changed here — the cursor may jump, so
	// stroke-building consumers should treat it as a pen lift (points).
	Confidence float64 `json:"confidence,omitempty"`
	Hypotheses int     `json:"hypotheses,omitempty"`
	Switched   bool    `json:"switched,omitempty"`
	// Dropped is how many events the subscriber lost (drop events).
	Dropped int `json:"dropped,omitempty"`
}

// ingestItem is one message on a session's ingest inbox; exactly one of
// the fields is meaningful.
type ingestItem struct {
	// rep is one phase report (the common case).
	rep rfid.Report
	// sweep, when positive, announces the reader cadence (from a Hello or
	// from session creation) and triggers lazy engine construction.
	sweep time.Duration
	// flush asks the pump to drain the reorder buffer and close the
	// engine's current sweeps, acking on the channel.
	flush chan struct{}
}

// Subscriber is one attached consumer of a session's event stream.
type Subscriber struct {
	sess *Session
	ch   chan Event
	// pendingDrops counts events lost since the last successfully
	// delivered drop notice; guarded by the session's emitMu.
	pendingDrops int
	drops        int64
}

// Events is the subscriber's bounded delivery queue. It is closed when
// the session ends or the subscriber detaches.
func (sub *Subscriber) Events() <-chan Event { return sub.ch }

// Drops reports how many events this subscriber has lost to the
// slow-consumer policy.
func (sub *Subscriber) Drops() int64 {
	sub.sess.emitMu.Lock()
	defer sub.sess.emitMu.Unlock()
	return sub.drops
}

// Close detaches the subscriber from its session. Safe to call more than
// once and after the session closed.
func (sub *Subscriber) Close() { sub.sess.detach(sub) }

// stroke accumulates one tag's in-progress stroke for glyph recognition.
type stroke struct {
	pts  []geom.Vec2
	last time.Duration
}

// Session binds one client's tag-set to a tracking engine and fans its
// live output to subscribers. All ingest flows through a single pump
// goroutine (satisfying the engine's single-ingest-goroutine contract);
// output events are emitted from engine shard goroutines under emitMu.
type Session struct {
	ID      string
	Created time.Time

	reg *Registry

	inbox    chan ingestItem
	quit     chan struct{}
	pumpDone chan struct{}

	// lastActive is the idle-GC clock (unix nanos), touched by ingest,
	// reader attach and subscriber attach.
	lastActive atomic.Int64

	// mu guards lifecycle state: closed, readers.
	mu      sync.Mutex
	closed  bool
	readers map[net.Conn]struct{}
	// closeOnce runs the shutdown exactly once; later Close calls wait.
	closeOnce sync.Once

	// emitMu guards subscribers and stroke state, written from engine
	// shard goroutines (OnUpdate) and the pump. subsClosed flips when
	// Close sweeps the subscriber table, so a racing Subscribe cannot
	// add a queue nobody will ever close.
	emitMu     sync.Mutex
	subs       map[*Subscriber]struct{}
	subsClosed bool
	strokes    map[string]*stroke

	// pump-owned state (no locking: single goroutine).
	eng     *engine.Engine
	sweep   time.Duration
	reorder reportHeap
	maxSeen time.Duration

	// statsMu guards the last engine stats snapshot the pump refreshes.
	statsMu   sync.Mutex
	lastStats []engine.TagStats

	// counters (atomic: read by HTTP handlers and metrics).
	reports     atomic.Int64
	points      atomic.Int64
	glyphs      atomic.Int64
	drops       atomic.Int64
	searchEvals atomic.Int64
	resyncs     atomic.Int64
	outOfOrder  atomic.Int64
	// hypothesis-set sums over the session's tags, refreshed with the
	// stats snapshot: active hypotheses (gauge) plus cumulative leader
	// switches and retirements.
	hypotheses     atomic.Int64
	leaderSwitches atomic.Int64
	retirements    atomic.Int64
}

// pumpTick is the pump's housekeeping period: idle detection (drain +
// sweep close after ~2 silent ticks) and stats refresh cadence.
const pumpTick = 50 * time.Millisecond

// statsEvery refreshes the engine stats snapshot every N pump ticks.
const statsEvery = 10

func newSession(reg *Registry, id string, sweep time.Duration) *Session {
	s := &Session{
		ID:       id,
		Created:  time.Now(),
		reg:      reg,
		inbox:    make(chan ingestItem, reg.cfg.IngestBuffer),
		quit:     make(chan struct{}),
		pumpDone: make(chan struct{}),
		readers:  map[net.Conn]struct{}{},
		subs:     map[*Subscriber]struct{}{},
		strokes:  map[string]*stroke{},
	}
	s.touch()
	go s.pump(sweep)
	return s
}

// touch refreshes the idle clock.
func (s *Session) touch() { s.lastActive.Store(time.Now().UnixNano()) }

// idleSince returns the last-activity time.
func (s *Session) idleSince() time.Time { return time.Unix(0, s.lastActive.Load()) }

// Offer feeds one phase report into the session. It blocks for
// backpressure when the inbox is full and fails once the session closes.
// Reports should be non-decreasing in time per reader; cross-reader skew
// up to the reorder window is resequenced.
func (s *Session) Offer(rep rfid.Report) error {
	return s.enqueue(ingestItem{rep: rep})
}

// enqueue pushes one ingest item, preferring the closed signal over the
// buffered inbox so post-close offers fail deterministically.
func (s *Session) enqueue(it ingestItem) error {
	select {
	case <-s.quit:
		return ErrSessionClosed
	default:
	}
	select {
	case s.inbox <- it:
		return nil
	case <-s.quit:
		return ErrSessionClosed
	}
}

// announceSweep tells the session its reader cadence (idempotent; the
// first announcement builds the engine).
func (s *Session) announceSweep(sweep time.Duration) error {
	if sweep <= 0 {
		return ErrNoSweep
	}
	return s.enqueue(ingestItem{sweep: sweep})
}

// Flush drains the reorder buffer and closes the engine's current sweeps,
// emitting any final positions. It blocks until the pump has done so.
func (s *Session) Flush() error {
	ack := make(chan struct{})
	if err := s.enqueue(ingestItem{flush: ack}); err != nil {
		return err
	}
	select {
	case <-ack:
		return nil
	case <-s.pumpDone:
		return ErrSessionClosed
	}
}

// Subscribe attaches a bounded-queue consumer to the session's live
// stream. buffer <= 0 takes the registry default. Subscribers beyond the
// per-session cap are refused (load shedding, HTTP 503 upstream).
func (s *Session) Subscribe(buffer int) (*Subscriber, error) {
	if buffer <= 0 {
		buffer = s.reg.cfg.SubscriberQueue
	}
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	if s.subsClosed {
		return nil, ErrSessionClosed
	}
	if len(s.subs) >= s.reg.cfg.MaxSubscribers {
		return nil, ErrSubscriberLimit
	}
	sub := &Subscriber{sess: s, ch: make(chan Event, buffer)}
	s.subs[sub] = struct{}{}
	s.reg.metrics.SubscribersActive.Add(1)
	s.touch()
	return sub, nil
}

// detach removes a subscriber, closing its queue exactly once.
func (s *Session) detach(sub *Subscriber) {
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	if _, ok := s.subs[sub]; !ok {
		return
	}
	delete(s.subs, sub)
	close(sub.ch)
	s.reg.metrics.SubscribersActive.Add(-1)
}

// Subscribers reports the attached consumer count.
func (s *Session) Subscribers() int {
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	return len(s.subs)
}

// addReader registers an ingest connection so session close also closes
// the wire.
func (s *Session) addReader(conn net.Conn) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	s.readers[conn] = struct{}{}
	s.touch()
	return nil
}

func (s *Session) removeReader(conn net.Conn) {
	s.mu.Lock()
	delete(s.readers, conn)
	s.mu.Unlock()
}

// Readers reports the connected reader count.
func (s *Session) Readers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.readers)
}

// expired reports whether the session is idle-expirable: no activity for
// longer than idle, with no readers attached and no subscribers.
func (s *Session) expired(now time.Time, idle time.Duration) bool {
	if now.Sub(s.idleSince()) <= idle {
		return false
	}
	if s.Readers() > 0 || s.Subscribers() > 0 {
		return false
	}
	return true
}

// Close tears the session down: stops the pump (which drains pending
// ingest, flushes and closes the engine), disconnects readers, emits a
// final "end" event and closes every subscriber queue. It is idempotent
// and safe to call concurrently; every caller returns after the shutdown
// has completed.
func (s *Session) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		conns := make([]net.Conn, 0, len(s.readers))
		for c := range s.readers {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		close(s.quit)
		for _, c := range conns {
			c.Close()
		}
		<-s.pumpDone
		s.emitMu.Lock()
		s.subsClosed = true
		for sub := range s.subs {
			delete(s.subs, sub)
			close(sub.ch)
			s.reg.metrics.SubscribersActive.Add(-1)
		}
		s.emitMu.Unlock()
		// Roll the final counts into the monotonic retired counters
		// (the pump's quit path refreshed them just before closing the
		// engine); Swap prevents double-counting with a concurrent
		// /metrics sum.
		s.reg.metrics.SearchEvalsRetired.Add(s.searchEvals.Swap(0))
		s.reg.metrics.LeaderSwitchesRetired.Add(s.leaderSwitches.Swap(0))
		s.reg.metrics.RetirementsRetired.Add(s.retirements.Swap(0))
		s.hypotheses.Store(0)
		s.reg.metrics.SessionsClosed.Add(1)
	})
	<-s.pumpDone
}

// pump is the session's single ingest goroutine: it owns the engine, the
// reorder buffer and the idle-drain logic.
func (s *Session) pump(sweep time.Duration) {
	defer close(s.pumpDone)
	if sweep > 0 {
		s.handleSweep(sweep)
	}
	ticker := time.NewTicker(pumpTick)
	defer ticker.Stop()
	idleTicks, ticks := 0, 0
	for {
		select {
		case it := <-s.inbox:
			idleTicks = 0
			s.handle(it)
		case <-ticker.C:
			idleTicks++
			ticks++
			if idleTicks == 2 {
				// ~100 ms of ingest silence: the stream paused or ended.
				// Drain the reorder buffer, close open sweeps so the last
				// positions reach subscribers, and finalize idle strokes.
				s.drain()
				s.finalizeStrokes()
			}
			if ticks%statsEvery == 0 {
				s.refreshStats()
			}
		case <-s.quit:
			for {
				select {
				case it := <-s.inbox:
					s.handle(it)
					continue
				default:
				}
				break
			}
			s.drain()
			// Final stats snapshot BEFORE closing the engine: Stats on a
			// closed engine returns nil, which would zero the counters
			// just before Close rolls them into the retired totals.
			s.refreshStats()
			if s.eng != nil {
				s.eng.Close()
			}
			s.finalizeStrokes()
			s.broadcast(Event{Type: "end"})
			return
		}
	}
}

func (s *Session) handle(it ingestItem) {
	switch {
	case it.sweep > 0:
		s.handleSweep(it.sweep)
	case it.flush != nil:
		s.drain()
		s.finalizeStrokes()
		s.refreshStats()
		close(it.flush)
	default:
		s.handleReport(it.rep)
	}
}

// handleSweep builds the engine on the first cadence announcement;
// later announcements (reader reconnects) keep the original cadence.
func (s *Session) handleSweep(sweep time.Duration) {
	if s.eng != nil {
		return
	}
	eng, err := s.reg.cfg.NewEngine(sweep, s.onUpdate)
	if err != nil {
		s.reg.cfg.Logf("server: session %s: engine: %v", s.ID, err)
		return
	}
	s.eng, s.sweep = eng, sweep
}

// handleReport resequences one report through the reorder heap and offers
// everything older than the hold window to the engine in time order.
func (s *Session) handleReport(rep rfid.Report) {
	s.touch()
	s.reports.Add(1)
	s.reg.metrics.Reports.Add(1)
	if s.eng == nil {
		// No cadence announced yet (defensive: the gateway always sends
		// the Hello first). Drop rather than grow without bound.
		return
	}
	heap.Push(&s.reorder, rep)
	if rep.Time > s.maxSeen {
		s.maxSeen = rep.Time
	}
	hold := s.reg.cfg.ReorderWindow
	for s.reorder.Len() > 0 && s.reorder.min().Time <= s.maxSeen-hold {
		s.offerToEngine(heap.Pop(&s.reorder).(rfid.Report))
	}
}

// drain releases the whole reorder buffer and closes current sweeps.
func (s *Session) drain() {
	for s.reorder.Len() > 0 {
		s.offerToEngine(heap.Pop(&s.reorder).(rfid.Report))
	}
	if s.eng != nil {
		if err := s.eng.Flush(); err != nil {
			s.reg.cfg.Logf("server: session %s: flush: %v", s.ID, err)
		}
	}
}

func (s *Session) offerToEngine(rep rfid.Report) {
	if err := s.eng.Offer(rep); err != nil {
		s.reg.cfg.Logf("server: session %s: offer: %v", s.ID, err)
	}
}

// refreshStats snapshots per-tag engine stats (pump-only, per the
// engine's Stats contract) for the HTTP info endpoint and the
// search-evals metric.
func (s *Session) refreshStats() {
	if s.eng == nil {
		return
	}
	stats := s.eng.Stats()
	var evals, hyps, switches, retire int64
	for _, st := range stats {
		evals += int64(st.SearchEvals)
		hyps += int64(st.Hypotheses)
		switches += int64(st.LeaderSwitches)
		retire += int64(st.Retirements)
	}
	s.searchEvals.Store(evals)
	s.hypotheses.Store(hyps)
	s.leaderSwitches.Store(switches)
	s.retirements.Store(retire)
	s.statsMu.Lock()
	s.lastStats = stats
	s.statsMu.Unlock()
}

// TagStats returns the last per-tag stats snapshot.
func (s *Session) TagStats() []engine.TagStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return append([]engine.TagStats(nil), s.lastStats...)
}

// onUpdate receives live positions from engine shard goroutines: it
// advances per-tag stroke state and broadcasts point events.
func (s *Session) onUpdate(u engine.Update) {
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	st := s.strokes[u.Tag]
	if st == nil {
		st = &stroke{}
		s.strokes[u.Tag] = st
	}
	for _, p := range u.Positions {
		// A leadership switch re-bases the trajectory on a different
		// hypothesis; the jump is not pen movement, so close the stroke.
		if len(st.pts) > 0 && (p.Time-st.last > s.reg.cfg.GlyphGap || p.Switched) {
			s.finalizeStrokeLocked(u.Tag, st)
		}
		st.pts = append(st.pts, p.Pos)
		st.last = p.Time
		s.points.Add(1)
		s.reg.metrics.Points.Add(1)
		s.broadcastLocked(Event{
			Type: "point", Tag: u.Tag, T: p.Time, X: p.Pos.X, Z: p.Pos.Z,
			Confidence: p.Confidence, Hypotheses: p.Hypotheses, Switched: p.Switched,
		})
	}
}

// finalizeStrokes closes every in-progress stroke (idle pause or session
// end) and emits their glyphs.
func (s *Session) finalizeStrokes() {
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	for tag, st := range s.strokes {
		s.finalizeStrokeLocked(tag, st)
	}
}

// finalizeStrokeLocked classifies one completed stroke against the glyph
// font and emits a glyph event. Requires emitMu.
func (s *Session) finalizeStrokeLocked(tag string, st *stroke) {
	pts := st.pts
	last := st.last
	st.pts, st.last = nil, 0
	if len(pts) < s.reg.cfg.GlyphMinPoints || s.reg.rec == nil {
		return
	}
	cls, err := s.reg.rec.Classify(pts)
	if err != nil {
		return
	}
	s.glyphs.Add(1)
	s.reg.metrics.Glyphs.Add(1)
	s.broadcastLocked(Event{
		Type: "glyph", Tag: tag, T: last,
		Glyph: string(cls.Rune), Dist: cls.Distance, Margin: cls.Margin,
		Points: len(pts),
	})
}

// broadcast emits one event to every subscriber.
func (s *Session) broadcast(ev Event) {
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	s.broadcastLocked(ev)
}

// broadcastLocked delivers an event to every subscriber queue with the
// slow-consumer policy: when a queue is full, the oldest event is dropped
// to make room — freshness beats completeness for a live cursor — and the
// loss is surfaced to the consumer as a "drop" event once space allows.
// Requires emitMu.
func (s *Session) broadcastLocked(ev Event) {
	for sub := range s.subs {
		if sub.pendingDrops > 0 {
			notice := Event{Type: "drop", Dropped: sub.pendingDrops}
			select {
			case sub.ch <- notice:
				sub.pendingDrops = 0
			default:
			}
		}
		select {
		case sub.ch <- ev:
			continue
		default:
		}
		// Queue full: evict the oldest event, then retry once.
		select {
		case <-sub.ch:
			sub.pendingDrops++
			sub.drops++
			s.drops.Add(1)
			s.reg.metrics.EventsDropped.Add(1)
		default:
		}
		select {
		case sub.ch <- ev:
		default:
			sub.pendingDrops++
			sub.drops++
			s.drops.Add(1)
			s.reg.metrics.EventsDropped.Add(1)
		}
	}
}

// reportHeap is a min-heap of reports by time: the session's small
// cross-reader resequencing buffer.
type reportHeap []rfid.Report

func (h reportHeap) Len() int           { return len(h) }
func (h reportHeap) Less(i, j int) bool { return h[i].Time < h[j].Time }
func (h reportHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *reportHeap) Push(x any)        { *h = append(*h, x.(rfid.Report)) }
func (h reportHeap) min() rfid.Report   { return h[0] }
func (h *reportHeap) Pop() any {
	old := *h
	n := len(old)
	rep := old[n-1]
	*h = old[:n-1]
	return rep
}
