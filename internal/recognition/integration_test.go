package recognition

import (
	"math/rand"
	"testing"

	"rfidraw/internal/corpus"
	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
)

// TestEveryCorpusWordRenderable guards the corpus↔font contract: every
// word the experiments can sample must be writable with the glyph set.
func TestEveryCorpusWordRenderable(t *testing.T) {
	for _, w := range corpus.All() {
		if _, err := handwriting.Write(w, geom.Vec2{}, handwriting.DefaultStyle(), nil); err != nil {
			t.Fatalf("corpus word %q not renderable: %v", w, err)
		}
	}
}

// TestAlphabetInWordContext classifies every letter written *inside a
// word* (with entry/exit connectors and neighbours), the situation the
// evaluation actually measures.
func TestAlphabetInWordContext(t *testing.T) {
	r := newRec(t)
	// Pangram-ish carriers covering a–z in varied contexts.
	words := []string{"quick", "brown", "fox", "jumps", "over", "lazy", "dog",
		"vexed", "wizards", "gym", "pack", "both", "quiz", "fjord"}
	total, correct := 0, 0
	for _, w := range words {
		written, err := handwriting.Write(w, geom.Vec2{}, handwriting.DefaultStyle(), nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.RecognizeLetters(written.Traj, written.Letters)
		if err != nil {
			t.Fatal(err)
		}
		for i, ru := range got {
			total++
			if byte(ru) == w[i] {
				correct++
			}
		}
	}
	rate := float64(correct) / float64(total)
	if rate < 0.97 {
		t.Fatalf("in-word clean letter accuracy = %.3f, want ≥0.97", rate)
	}
}

// TestWordRecognitionAcrossStyles measures clean word recognition over
// many user styles — an upper bound the RF pipeline is then compared
// against (reconstruction noise can only lower it).
func TestWordRecognitionAcrossStyles(t *testing.T) {
	r := newRec(t)
	rng := rand.New(rand.NewSource(77))
	words, err := corpus.Sample(rng, 40)
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for i, w := range words {
		style := handwriting.RandomStyle(rng)
		written, err := handwriting.Write(w, geom.Vec2{X: float64(i % 3), Z: 1}, style, rng)
		if err != nil {
			t.Fatal(err)
		}
		_, hit, err := r.RecognizeWord(written.Traj, written.Letters, w)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			ok++
		}
	}
	if rate := float64(ok) / float64(len(words)); rate < 0.85 {
		t.Fatalf("clean styled word recognition = %.2f, want ≥0.85", rate)
	}
}
