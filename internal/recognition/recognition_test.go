package recognition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rfidraw/internal/corpus"
	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/traj"
)

func newRec(t testing.TB) *Recognizer {
	t.Helper()
	r, err := New(corpus.All())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestClassifyCleanGlyphs(t *testing.T) {
	// Every noiseless glyph must classify as itself.
	r := newRec(t)
	for _, ru := range handwriting.Alphabet() {
		g, _ := handwriting.GlyphFor(ru)
		c, err := r.Classify(g.Points)
		if err != nil {
			t.Fatal(err)
		}
		if c.Rune != ru {
			t.Errorf("glyph %q classified as %q", ru, c.Rune)
		}
		if c.Distance > 1e-9 {
			t.Errorf("glyph %q self-distance = %v", ru, c.Distance)
		}
	}
}

func TestClassifyInvariances(t *testing.T) {
	// Translation and uniform scaling must not change the result.
	r := newRec(t)
	g, _ := handwriting.GlyphFor('w')
	moved := make([]geom.Vec2, len(g.Points))
	for i, p := range g.Points {
		moved[i] = p.Scale(3.7).Add(geom.Vec2{X: 10, Z: -4})
	}
	c, err := r.Classify(moved)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rune != 'w' {
		t.Fatalf("scaled+shifted 'w' classified as %q", c.Rune)
	}
}

func TestClassifyHandwrittenLetters(t *testing.T) {
	// Letters written with random user styles (slant, jitter) must still
	// classify correctly in the overwhelming majority of cases.
	r := newRec(t)
	rng := rand.New(rand.NewSource(31))
	total, correct := 0, 0
	for trial := 0; trial < 6; trial++ {
		style := handwriting.RandomStyle(rng)
		for _, ru := range handwriting.Alphabet() {
			w, err := handwriting.Write(string(ru), geom.Vec2{}, style, rng)
			if err != nil {
				t.Fatal(err)
			}
			c, err := r.Classify(w.Traj.Positions())
			if err != nil {
				t.Fatal(err)
			}
			total++
			if c.Rune == ru {
				correct++
			}
		}
	}
	rate := float64(correct) / float64(total)
	if rate < 0.95 {
		t.Fatalf("styled letter accuracy = %.3f, want ≥0.95", rate)
	}
}

func TestClassifyScatterIsChanceLevel(t *testing.T) {
	// Incoherent random scatter (what the AoA baseline produces) must not
	// systematically match any letter: accuracy ≈ 1/26.
	r := newRec(t)
	rng := rand.New(rand.NewSource(32))
	correct := 0
	const trials = 260
	for i := 0; i < trials; i++ {
		target := handwriting.Alphabet()[i%26]
		pts := make([]geom.Vec2, 40)
		for j := range pts {
			pts[j] = geom.Vec2{X: rng.Float64(), Z: rng.Float64()}
		}
		c, err := r.Classify(pts)
		if err != nil {
			t.Fatal(err)
		}
		if c.Rune == target {
			correct++
		}
	}
	rate := float64(correct) / trials
	if rate > 0.15 {
		t.Fatalf("scatter accuracy = %.3f, want chance level", rate)
	}
}

func TestClassifyErrors(t *testing.T) {
	r := newRec(t)
	if _, err := r.Classify(nil); err == nil {
		t.Fatal("empty shape should error")
	}
	if _, err := r.Classify([]geom.Vec2{{X: 1, Z: 1}}); err == nil {
		t.Fatal("single point should error")
	}
}

func TestRecognizeWordCleanAndCorrected(t *testing.T) {
	r := newRec(t)
	w, err := handwriting.Write("clear", geom.Vec2{}, handwriting.DefaultStyle(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := r.RecognizeWord(w.Traj, w.Letters, "clear")
	if err != nil {
		t.Fatal(err)
	}
	if !ok || got != "clear" {
		t.Fatalf("got %q ok=%v", got, ok)
	}
}

func TestRecognizeLettersErrors(t *testing.T) {
	r := newRec(t)
	if _, err := r.RecognizeLetters(traj.Trajectory{}, nil); err == nil {
		t.Fatal("no spans should error")
	}
	spans := []handwriting.LetterSpan{{Rune: 'a', Start: 0, End: time.Second}}
	if _, err := r.RecognizeLetters(traj.Trajectory{}, spans); err == nil {
		t.Fatal("empty trajectory should error")
	}
}

func TestCorrectWord(t *testing.T) {
	r := newRec(t)
	// One-letter error within a dictionary word is fixed.
	if got := r.CorrectWord("cleor", 1); got != "clear" {
		t.Fatalf("correction = %q", got)
	}
	// Exact dictionary word is kept.
	if got := r.CorrectWord("play", 1); got != "play" {
		t.Fatalf("exact = %q", got)
	}
	// Garbage beyond maxDist is left alone.
	if got := r.CorrectWord("qqqqqqq", 1); got != "qqqqqqq" {
		t.Fatalf("garbage = %q", got)
	}
	// Without a dictionary, identity.
	nr, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := nr.CorrectWord("cleor", 2); got != "cleor" {
		t.Fatalf("no-dict = %q", got)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"clear", "clear", 0},
		{"clear", "cleat", 1},
	}
	for _, tc := range cases {
		if got := editDistance(tc.a, tc.b); got != tc.want {
			t.Errorf("editDistance(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestDTWProperties(t *testing.T) {
	a := normalizeShape([]geom.Vec2{{X: 0, Z: 0}, {X: 1, Z: 0}, {X: 1, Z: 1}})
	b := normalizeShape([]geom.Vec2{{X: 0, Z: 0}, {X: 0, Z: 1}, {X: 1, Z: 1}})
	if d := dtw(a, a, 8); d > 1e-12 {
		t.Fatalf("self distance = %v", d)
	}
	dab, dba := dtw(a, b, 8), dtw(b, a, 8)
	if math.Abs(dab-dba) > 1e-9 {
		t.Fatalf("asymmetric: %v vs %v", dab, dba)
	}
	if dab <= 0 {
		t.Fatal("distinct shapes should have positive distance")
	}
	if !math.IsInf(dtw(nil, a, 8), 1) {
		t.Fatal("empty input should be infinite")
	}
	// Degenerate window is clamped.
	if d := dtw(a, a, 0); d > 1e-12 {
		t.Fatalf("window-0 self distance = %v", d)
	}
}

// Property: classification is deterministic and always returns a letter of
// the alphabet with non-negative distance.
func TestQuickClassifyWellFormed(t *testing.T) {
	r := newRec(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]geom.Vec2, 12+rng.Intn(40))
		for i := range pts {
			pts[i] = geom.Vec2{X: rng.NormFloat64(), Z: rng.NormFloat64()}
		}
		c1, err1 := r.Classify(pts)
		c2, err2 := r.Classify(pts)
		if err1 != nil || err2 != nil {
			return false
		}
		if c1.Rune != c2.Rune || c1.Distance != c2.Distance {
			return false
		}
		return c1.Rune >= 'a' && c1.Rune <= 'z' && c1.Distance >= 0 && c1.Margin >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: edit distance satisfies the triangle inequality on short words.
func TestQuickEditDistanceTriangle(t *testing.T) {
	gen := func(rng *rand.Rand) string {
		n := rng.Intn(6)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(4))
		}
		return string(b)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := gen(rng), gen(rng), gen(rng)
		return editDistance(a, c) <= editDistance(a, b)+editDistance(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
