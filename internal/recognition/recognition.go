// Package recognition is this reproduction's stand-in for the MyScript
// Stylus handwriting recognizer the paper feeds its reconstructed
// trajectories into (§9). It classifies letter-segment shapes by dynamic
// time warping (DTW) against the glyph font's templates, and recognizes
// words by classifying each manually-segmented letter and then applying a
// dictionary correction — mirroring how the paper's pipeline turns
// trajectories into text.
//
// What matters for the evaluation is the recognizer's *qualitative*
// behaviour: shapes that preserve the written form (possibly stretched or
// shifted — RF-IDraw's coherent errors) classify correctly, while
// incoherent scatter (the antenna-array baseline's independent errors)
// classifies at chance level (~1/26, matching the paper's "<4%,
// equivalent to a random guess").
package recognition

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/traj"
)

// TemplatePoints is the number of resampled points per shape.
const TemplatePoints = 48

// Recognizer classifies letter shapes against the glyph templates.
type Recognizer struct {
	runes     []rune
	templates [][]geom.Vec2
	// Window is the DTW Sakoe–Chiba band half-width in samples.
	Window int
	// dict is the word list used for dictionary correction.
	dict []string
}

// New builds a recognizer from the glyph font and an optional dictionary
// (nil disables word correction).
func New(dict []string) (*Recognizer, error) {
	r := &Recognizer{Window: 8, dict: append([]string(nil), dict...)}
	sort.Strings(r.dict)
	for _, ru := range handwriting.Alphabet() {
		g, ok := handwriting.GlyphFor(ru)
		if !ok {
			return nil, fmt.Errorf("recognition: missing glyph %q", ru)
		}
		shape := normalizeShape(g.Points)
		if shape == nil {
			return nil, fmt.Errorf("recognition: degenerate glyph %q", ru)
		}
		r.runes = append(r.runes, ru)
		r.templates = append(r.templates, shape)
	}
	if len(r.runes) == 0 {
		return nil, errors.New("recognition: empty alphabet")
	}
	return r, nil
}

// normalizeShape resamples to TemplatePoints and normalizes translation
// and scale, so classification is invariant to where and how large the
// letter was written — the invariances handwriting recognizers provide.
func normalizeShape(points []geom.Vec2) []geom.Vec2 {
	if len(points) < 2 {
		return nil
	}
	rs := geom.ResamplePolyline(points, TemplatePoints)
	return traj.Normalize(rs)
}

// dtw computes the dynamic-time-warping distance between two equal-length
// normalized shapes with a Sakoe–Chiba band.
func dtw(a, b []geom.Vec2, window int) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	if window < 1 {
		window = 1
	}
	const inf = math.MaxFloat64 / 4
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo := i - window
		if lo < 1 {
			lo = 1
		}
		hi := i + window
		if hi > m {
			hi = m
		}
		for j := lo; j <= hi; j++ {
			d := a[i-1].Dist(b[j-1])
			best := prev[j]
			if prev[j-1] < best {
				best = prev[j-1]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = d + best
		}
		prev, cur = cur, prev
	}
	return prev[m] / float64(n)
}

// Classification is a ranked classification result.
type Classification struct {
	Rune rune
	// Distance is the DTW distance to the best template; smaller is
	// more confident.
	Distance float64
	// Margin is runner-up distance minus best distance; larger means
	// less ambiguous.
	Margin float64
}

// Classify identifies the letter a shape most resembles.
func (r *Recognizer) Classify(points []geom.Vec2) (Classification, error) {
	shape := normalizeShape(points)
	if shape == nil {
		return Classification{}, errors.New("recognition: shape has fewer than 2 points")
	}
	best, second := math.Inf(1), math.Inf(1)
	bestIdx := -1
	for i, tmpl := range r.templates {
		d := dtw(shape, tmpl, r.Window)
		if d < best {
			second = best
			best, bestIdx = d, i
		} else if d < second {
			second = d
		}
	}
	return Classification{Rune: r.runes[bestIdx], Distance: best, Margin: second - best}, nil
}

// RecognizeLetters classifies each letter span of a (reconstructed)
// trajectory time-aligned with the written word and returns the raw
// character string before dictionary correction.
func (r *Recognizer) RecognizeLetters(t traj.Trajectory, spans []handwriting.LetterSpan) (string, error) {
	if len(spans) == 0 {
		return "", errors.New("recognition: no letter spans")
	}
	out := make([]rune, 0, len(spans))
	for _, span := range spans {
		pts, err := handwriting.LetterPositions(t, span, TemplatePoints)
		if err != nil {
			return "", err
		}
		c, err := r.Classify(pts)
		if err != nil {
			return "", err
		}
		out = append(out, c.Rune)
	}
	return string(out), nil
}

// CorrectWord snaps a raw character string to the dictionary: the unique
// same-length word with the smallest edit distance wins, provided it is
// within maxDist edits and strictly better than the runner-up. Otherwise
// the raw string is returned unchanged. With no dictionary it is the
// identity.
func (r *Recognizer) CorrectWord(raw string, maxDist int) string {
	if len(r.dict) == 0 {
		return raw
	}
	best, second := math.MaxInt32, math.MaxInt32
	bestWord := raw
	for _, w := range r.dict {
		if abs(len(w)-len(raw)) > maxDist {
			continue
		}
		d := editDistance(raw, w)
		if d < best {
			second = best
			best, bestWord = d, w
		} else if d < second {
			second = d
		}
	}
	if best <= maxDist && best < second {
		return bestWord
	}
	return raw
}

// RecognizeWord runs letter classification plus dictionary correction and
// reports whether the result matches truth — the paper's word-recognition
// success criterion (§9.2).
func (r *Recognizer) RecognizeWord(t traj.Trajectory, spans []handwriting.LetterSpan, truth string) (string, bool, error) {
	raw, err := r.RecognizeLetters(t, spans)
	if err != nil {
		return "", false, err
	}
	got := r.CorrectWord(raw, 1)
	return got, got == truth, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// editDistance is the Levenshtein distance.
func editDistance(a, b string) int {
	n, m := len(a), len(b)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
