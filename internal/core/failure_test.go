package core

import (
	"math/rand"
	"testing"
	"time"

	"rfidraw/internal/deploy"
	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/phys"
	"rfidraw/internal/sim"
	"rfidraw/internal/tracing"
	"rfidraw/internal/traj"
	"rfidraw/internal/vote"
)

// Failure-injection tests: the system must degrade cleanly, not panic or
// produce garbage silently, under realistic fault modes.

func runWord(t *testing.T, seed int64) (*sim.Scenario, *sim.WordRun, *System) {
	t.Helper()
	sc, err := sim.New(sim.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	wr, err := sc.RunWord("on", geom.Vec2{X: 0.9, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sc.RFIDraw, Config{Plane: sc.Plane, Region: sc.Region})
	if err != nil {
		t.Fatal(err)
	}
	return sc, wr, sys
}

func TestTraceSurvivesSingleDeadAntenna(t *testing.T) {
	// One dead port: 5 wide pairs (of 6) and most coarse pairs survive,
	// so tracing must still work, just with fewer votes.
	_, wr, sys := runWord(t, 201)
	for i := range wr.SamplesRF {
		delete(wr.SamplesRF[i].Phase, 3)
	}
	res, err := sys.Trace(wr.SamplesRF)
	if err != nil {
		t.Fatal(err)
	}
	med, err := traj.MedianError(wr.Truth, res.Best.Trajectory, traj.AlignInitial, 64)
	if err != nil {
		t.Fatal(err)
	}
	if med > 0.08 {
		t.Fatalf("shape error with dead antenna = %v m", med)
	}
}

func TestTraceFailsCleanlyWithDeadReader(t *testing.T) {
	// Losing the whole coarse reader removes every stage-1 pair: the
	// positioner must refuse rather than hallucinate a position.
	_, wr, sys := runWord(t, 202)
	for i := range wr.SamplesRF {
		for id := 5; id <= 8; id++ {
			delete(wr.SamplesRF[i].Phase, id)
		}
	}
	if _, err := sys.Trace(wr.SamplesRF); err == nil {
		t.Fatal("dead coarse reader should be an error, not a guess")
	}
}

func TestTraceSurvivesBurstLoss(t *testing.T) {
	// A 10-sweep total blackout mid-word: the tracker holds position and
	// re-continues when phases return.
	_, wr, sys := runWord(t, 203)
	mid := len(wr.SamplesRF) / 2
	for i := mid; i < mid+10 && i < len(wr.SamplesRF); i++ {
		wr.SamplesRF[i].Phase = vote.Observations{}
	}
	res, err := sys.Trace(wr.SamplesRF)
	if err != nil {
		t.Fatal(err)
	}
	med, err := traj.MedianError(wr.Truth, res.Best.Trajectory, traj.AlignInitial, 64)
	if err != nil {
		t.Fatal(err)
	}
	if med > 0.10 {
		t.Fatalf("shape error after blackout = %v m", med)
	}
}

func TestTraceSurvivesCorruptPhases(t *testing.T) {
	// Occasional wildly wrong phases (interference bursts) must not
	// derail the over-constrained vote.
	_, wr, sys := runWord(t, 204)
	rng := rand.New(rand.NewSource(1))
	for i := range wr.SamplesRF {
		if rng.Float64() < 0.05 {
			id := 1 + rng.Intn(8)
			if _, ok := wr.SamplesRF[i].Phase[id]; ok {
				wr.SamplesRF[i].Phase[id] = rng.Float64() * phys.TwoPi
			}
		}
	}
	res, err := sys.Trace(wr.SamplesRF)
	if err != nil {
		t.Fatal(err)
	}
	med, err := traj.MedianError(wr.Truth, res.Best.Trajectory, traj.AlignInitial, 64)
	if err != nil {
		t.Fatal(err)
	}
	if med > 0.10 {
		t.Fatalf("shape error with corrupt phases = %v m", med)
	}
}

func TestTraceRejectsOutOfRegionStart(t *testing.T) {
	// Observations consistent with a source far outside the region: the
	// candidates clip into the region; tracing must not explode.
	sc, err := sim.New(sim.Config{Seed: 205})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(sc.RFIDraw, Config{Plane: sc.Plane, Region: sc.Region})
	if err != nil {
		t.Fatal(err)
	}
	src := sc.Plane.To3D(geom.Vec2{X: 8, Z: 5}) // far outside
	obs := vote.Observations{}
	for _, a := range sc.RFIDraw.Antennas {
		obs[a.ID] = phys.PathPhase(sc.RFIDraw.Carrier, sc.RFIDraw.Link, a.Pos.Dist(src))
	}
	samples := []tracing.Sample{{T: 0, Phase: obs}, {T: 25 * time.Millisecond, Phase: obs}}
	res, err := sys.Trace(samples)
	if err != nil {
		// Acceptable: the system may fail cleanly.
		return
	}
	// If it returns, the positions must be inside the region.
	for _, p := range res.Best.Trajectory.Points {
		if !sc.Region.Expand(0.01).Contains(p.Pos) {
			t.Fatalf("out-of-region estimate %v", p.Pos)
		}
	}
}

func TestTraceWithDuplicateTimestamps(t *testing.T) {
	// Duplicated sweeps (e.g. a retransmitting bridge) must not break
	// monotonic unwrapping.
	_, wr, sys := runWord(t, 206)
	dup := make([]tracing.Sample, 0, 2*len(wr.SamplesRF))
	for _, s := range wr.SamplesRF {
		dup = append(dup, s, s)
	}
	res, err := sys.Trace(dup)
	if err != nil {
		t.Fatal(err)
	}
	med, err := traj.MedianError(wr.Truth, res.Best.Trajectory, traj.AlignInitial, 64)
	if err != nil {
		t.Fatal(err)
	}
	if med > 0.08 {
		t.Fatalf("shape error with duplicated samples = %v m", med)
	}
}

func TestAveragePhasesProperties(t *testing.T) {
	// Averaging a constant phase returns it; averaging opposite phasors
	// drops the antenna.
	sc := vote.NewScratch()
	s1 := tracing.Sample{Phase: vote.Observations{1: 1.0, 2: 0.5}}
	s2 := tracing.Sample{Phase: vote.Observations{1: 1.0, 2: 0.5 + 3.14159265}}
	obs := averagePhases(sc, []tracing.Sample{s1, s2}, 2)
	if v, ok := obs[1]; !ok || v < 0.99 || v > 1.01 {
		t.Fatalf("constant phase average = %v", v)
	}
	if _, ok := obs[2]; ok {
		t.Fatal("cancelled phasor should be dropped")
	}
	// k larger than available samples is clamped.
	obs = averagePhases(sc, []tracing.Sample{s1}, 10)
	if _, ok := obs[1]; !ok {
		t.Fatal("clamped averaging lost data")
	}
	if got := averagePhases(sc, nil, 3); len(got) != 0 {
		t.Fatal("empty input should average to empty")
	}
}

func TestSystemAcrossDistances(t *testing.T) {
	// The same configuration must work across the paper's 2–5 m span.
	for _, d := range []float64{2, 3, 4, 5} {
		sc, err := sim.New(sim.Config{Seed: 300 + int64(d*10), Distance: d})
		if err != nil {
			t.Fatal(err)
		}
		wr, err := sc.RunWord("go", geom.Vec2{X: 0.9, Z: 1.0}, handwriting.DefaultStyle())
		if err != nil {
			t.Fatal(err)
		}
		sys, err := NewSystem(sc.RFIDraw, Config{Plane: sc.Plane, Region: sc.Region})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Trace(wr.SamplesRF)
		if err != nil {
			t.Fatalf("distance %v: %v", d, err)
		}
		med, err := traj.MedianError(wr.Truth, res.Best.Trajectory, traj.AlignInitial, 64)
		if err != nil {
			t.Fatal(err)
		}
		if med > 0.12 {
			t.Fatalf("distance %v: shape error %v m", d, med)
		}
	}
}

func TestNilDeploymentUsesDefault(t *testing.T) {
	sys, err := NewSystem(nil, Config{Plane: geom.Plane{Y: 2}, Region: deploy.DefaultRegion()})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Deployment().Antennas) != 8 {
		t.Fatal("default deployment expected")
	}
}
