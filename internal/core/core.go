// Package core wires RF-IDraw's pieces into one system: the Fig. 6d
// deployment, the two-stage multi-resolution positioner (§5.1) and the
// grating-lobe trajectory tracer (§5.2). It is the engine behind the public
// rfidraw package and the experiment harness.
package core

import (
	"errors"
	"fmt"
	"math/cmplx"
	"sync"

	"rfidraw/internal/deploy"
	"rfidraw/internal/geom"
	"rfidraw/internal/phys"
	"rfidraw/internal/tracing"
	"rfidraw/internal/vote"
)

// Config assembles a System.
type Config struct {
	// Plane is the writing plane (its Y is the user's distance from the
	// antenna wall).
	Plane geom.Plane
	// Region bounds the search in the writing plane.
	Region geom.Rect
	// CandidateCount is how many candidate initial positions the
	// positioner keeps (§5.2 traces each). Default 5.
	CandidateCount int
	// InitialAverage is how many leading samples are coherently averaged
	// before candidate voting; averaging e^{jφ} across a few sweeps
	// (~tens of ms, during which the hand moves a few centimetres at
	// most) suppresses per-reply phase noise. Default 3.
	InitialAverage int
	// Vote and Trace allow overriding algorithm tunables; zero values
	// take the package defaults.
	Vote  vote.Config
	Trace tracing.Config
}

// System is a configured RF-IDraw instance.
type System struct {
	dep        *deploy.RFIDraw
	positioner *vote.Positioner
	tracer     *tracing.Tracer
	cfg        Config
	// scratch pools reusable search scratches for calls that are not
	// handed an explicit one; the engine's shards pass their own.
	scratch sync.Pool
}

// NewSystem builds a System for a deployment. A nil deployment uses the
// standard one.
func NewSystem(dep *deploy.RFIDraw, cfg Config) (*System, error) {
	var err error
	if dep == nil {
		dep, err = deploy.DefaultRFIDraw()
		if err != nil {
			return nil, err
		}
	}
	if cfg.Region.Width() <= 0 || cfg.Region.Height() <= 0 {
		return nil, fmt.Errorf("core: degenerate region %+v", cfg.Region)
	}
	if cfg.Plane.Y <= 0 {
		return nil, fmt.Errorf("core: writing plane distance %v must be positive", cfg.Plane.Y)
	}
	if cfg.CandidateCount <= 0 {
		cfg.CandidateCount = 5
	}
	if cfg.InitialAverage <= 0 {
		cfg.InitialAverage = 3
	}
	vc := cfg.Vote
	vc.Plane = cfg.Plane
	vc.Region = cfg.Region
	vc.CandidateCount = cfg.CandidateCount
	positioner, err := vote.NewPositioner(dep.Stage1Pairs(), dep.WidePairs, vc)
	if err != nil {
		return nil, err
	}
	tc := cfg.Trace
	tc.Plane = cfg.Plane
	tc.Region = cfg.Region
	tracer, err := tracing.NewTracer(dep.AllPairs(), tc)
	if err != nil {
		return nil, err
	}
	s := &System{dep: dep, positioner: positioner, tracer: tracer, cfg: cfg}
	s.scratch.New = func() any { return vote.NewScratch() }
	return s, nil
}

// Deployment returns the system's antenna deployment.
func (s *System) Deployment() *deploy.RFIDraw { return s.dep }

// Positioner exposes the multi-resolution positioner.
func (s *System) Positioner() *vote.Positioner { return s.positioner }

// Tracer exposes the trajectory tracer.
func (s *System) Tracer() *tracing.Tracer { return s.tracer }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Localize runs multi-resolution positioning on one observation set.
func (s *System) Localize(obs vote.Observations) ([]vote.Candidate, error) {
	return s.positioner.Candidates(obs)
}

// TraceResult is a full tracing outcome: the chosen trajectory plus every
// candidate's trace for diagnostics (Fig. 10 shows both).
type TraceResult struct {
	// Best is the chosen reconstruction (highest mean trajectory vote).
	Best tracing.Result
	// BestIndex indexes Candidates/All for the chosen one.
	BestIndex int
	// Candidates are the initial positions the positioner proposed, in
	// the order their traces appear in All.
	Candidates []vote.Candidate
	// All are the traces from every candidate, aligned with Candidates.
	All []tracing.Result
	// CandidateStats reports the search work the initial positioning
	// spent (mode, surviving cells, grid evaluations).
	CandidateStats vote.SearchStats
	// LeaderSwitches is how many times the leading hypothesis changed as
	// the multi-hypothesis stream extended — the §5.2 disambiguation
	// visibly converging.
	LeaderSwitches int
	// Retirements is how many candidate hypotheses were retired for a
	// collapsed vote record before the stream ended.
	Retirements int
}

// InitialPosition returns the chosen candidate's initial position — the
// system's absolute position estimate (§8.2 evaluates its accuracy).
func (r *TraceResult) InitialPosition() geom.Vec2 {
	return r.Candidates[r.BestIndex].Pos
}

// Trace reconstructs the tag's trajectory from an observation stream: it
// localizes candidate initial positions from the earliest usable sample,
// traces each candidate, and keeps the trajectory with the best vote
// record (§5.2's selection rule).
func (s *System) Trace(samples []tracing.Sample) (*TraceResult, error) {
	return s.TraceWith(nil, samples)
}

// TraceWith is Trace with an explicit reusable search scratch (see
// vote.Scratch): workers that trace many tags — the engine's shards — pin
// one scratch each so the whole pipeline stays allocation-free once warm.
// A nil scratch falls back to the internal pools. The scratch never
// influences results.
//
// TraceWith is "acquire, then replay": candidate initial positions are
// localized from the earliest usable window, then every sample from that
// point is pushed through one tracing.MultiStream — exactly the code the
// live tracker (internal/realtime) runs sweep by sweep, so the batch
// result is byte-identical to a streaming replay of the same samples.
func (s *System) TraceWith(sc *vote.Scratch, samples []tracing.Sample) (*TraceResult, error) {
	if len(samples) == 0 {
		return nil, errors.New("core: no samples")
	}
	if sc == nil {
		sc = s.scratch.Get().(*vote.Scratch)
		defer s.scratch.Put(sc)
	}
	cands, cstats, start, err := s.Acquire(sc, samples, true)
	if err != nil {
		return nil, err
	}
	ms, err := s.tracer.NewMultiStreamWith(sc, cands, samples[start], tracing.MultiConfig{Record: true})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	for _, smp := range samples[start:] {
		ms.Push(smp)
	}
	return ResultFromMulti(ms, cstats)
}

// Acquire finds the earliest sample window the positioner can work with —
// the first few sweeps may miss ports before every antenna has been heard
// — and returns the candidate initial positions, the search stats and the
// window's start index. Phases are averaged coherently over
// InitialAverage samples to suppress reply noise before the initial vote.
//
// complete marks the sample slice as a finished stream: averaging windows
// may then be clamped at the tail. Streaming callers (the live tracker's
// warmup) pass false so a window that would be clamped waits for more
// data instead — keeping a later batch replay of the same samples
// bit-identical to what the live path acquired.
func (s *System) Acquire(sc *vote.Scratch, samples []tracing.Sample, complete bool) ([]vote.Candidate, vote.SearchStats, int, error) {
	if len(samples) == 0 {
		return nil, vote.SearchStats{}, -1, errors.New("core: no samples")
	}
	if sc == nil {
		sc = s.scratch.Get().(*vote.Scratch)
		defer s.scratch.Put(sc)
	}
	var lastErr error
	for i := range samples {
		if !complete && i+s.cfg.InitialAverage > len(samples) {
			break // window would clamp; wait for more data
		}
		obs := averagePhases(sc, samples[i:], s.cfg.InitialAverage)
		c, st, err := s.positioner.CandidatesWith(sc, obs)
		if err == nil {
			return c, st, i, nil
		}
		lastErr = err
		if i >= 8 {
			break
		}
	}
	if lastErr == nil {
		lastErr = errors.New("not enough samples for an unclamped averaging window")
	}
	return nil, vote.SearchStats{}, -1, fmt.Errorf("core: no usable initial sample: %w", lastErr)
}

// ResultFromMulti materializes a recorded multi-hypothesis stream into
// the batch TraceResult shape; the live tracker uses it to snapshot the
// batch-equivalent outcome of its stream.
func ResultFromMulti(ms *tracing.MultiStream, cstats vote.SearchStats) (*TraceResult, error) {
	all, kept, bestIdx, err := ms.Results()
	if err != nil {
		return nil, fmt.Errorf("core: every candidate trace failed: %w", err)
	}
	return &TraceResult{
		Best:           all[bestIdx],
		BestIndex:      bestIdx,
		Candidates:     kept,
		All:            all,
		CandidateStats: cstats,
		LeaderSwitches: ms.Switches(),
		Retirements:    ms.Retirements(),
	}, nil
}

// averagePhases coherently averages each antenna's wrapped phase over up to
// k leading samples: the circular mean of e^{jφ}. Antennas absent from all
// samples stay absent. The returned observations live in the scratch's
// reusable buffers (see vote.Scratch.ObsBuf) and are invalidated by the
// next averaging or sweep-merge call on the same scratch.
func averagePhases(sc *vote.Scratch, samples []tracing.Sample, k int) vote.Observations {
	if k > len(samples) {
		k = len(samples)
	}
	acc := sc.PhasorBuf()
	for i := 0; i < k; i++ {
		for id, ph := range samples[i].Phase {
			acc[id] += cmplx.Rect(1, ph)
		}
	}
	obs := sc.ObsBuf()
	for id, c := range acc {
		// A near-zero phasor sum means the samples disagreed completely;
		// its phase is meaningless, so drop the antenna for this window.
		if cmplx.Abs(c) > 1e-6 {
			obs[id] = phys.Wrap(cmplx.Phase(c))
		}
	}
	return obs
}
