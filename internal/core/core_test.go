package core

import (
	"testing"
	"time"

	"rfidraw/internal/deploy"
	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/sim"
	"rfidraw/internal/tracing"
	"rfidraw/internal/traj"
	"rfidraw/internal/vote"
)

func newSystem(t testing.TB, dist float64) *System {
	t.Helper()
	s, err := NewSystem(nil, Config{
		Plane:  geom.Plane{Y: dist},
		Region: deploy.DefaultRegion(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, Config{Plane: geom.Plane{Y: 2}}); err == nil {
		t.Fatal("degenerate region should error")
	}
	if _, err := NewSystem(nil, Config{Plane: geom.Plane{}, Region: deploy.DefaultRegion()}); err == nil {
		t.Fatal("zero plane distance should error")
	}
	s := newSystem(t, 2)
	if s.Deployment() == nil || s.Positioner() == nil || s.Tracer() == nil {
		t.Fatal("accessors should be populated")
	}
	if s.Config().CandidateCount != 5 {
		t.Fatalf("default candidate count = %d", s.Config().CandidateCount)
	}
}

func TestEndToEndTraceAccuracy(t *testing.T) {
	// Full pipeline: simulated readers → merged samples → candidates →
	// traced trajectory. Shape error must be centimetre-level in LOS.
	sc, err := sim.New(sim.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	wr, err := sc.RunWord("clear", geom.Vec2{X: 0.6, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(t, sc.Plane.Y)
	res, err := sys.Trace(wr.SamplesRF)
	if err != nil {
		t.Fatal(err)
	}
	med, err := traj.MedianError(wr.Truth, res.Best.Trajectory, traj.AlignInitial, 128)
	if err != nil {
		t.Fatal(err)
	}
	if med > 0.08 {
		t.Fatalf("end-to-end LOS shape error = %v m", med)
	}
	// The chosen initial position should be decently close (§8.2 reports
	// a 19 cm median in LOS).
	if d := res.InitialPosition().Dist(wr.Truth.Start()); d > 0.6 {
		t.Fatalf("initial position error = %v m", d)
	}
	if len(res.All) != len(res.Candidates) {
		t.Fatal("trace/candidate alignment broken")
	}
	if res.BestIndex < 0 || res.BestIndex >= len(res.All) {
		t.Fatalf("best index = %d", res.BestIndex)
	}
}

func TestTraceEmptySamples(t *testing.T) {
	sys := newSystem(t, 2)
	if _, err := sys.Trace(nil); err == nil {
		t.Fatal("no samples should error")
	}
	// Unusable samples (all phases missing) should fail cleanly.
	bad := make([]tracing.Sample, 12)
	for i := range bad {
		bad[i] = tracing.Sample{T: time.Duration(i) * time.Millisecond, Phase: vote.Observations{}}
	}
	if _, err := sys.Trace(bad); err == nil {
		t.Fatal("unusable samples should error")
	}
}

func TestLocalizeMatchesPositioner(t *testing.T) {
	sc, err := sim.New(sim.Config{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	rf, _, err := sc.StaticRun(geom.Vec2{X: 1.3, Z: 1.0}, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(t, sc.Plane.Y)
	// Use a steady-state sample (all antennas heard).
	sample := rf[len(rf)-1]
	cands, err := sys.Localize(sample.Phase)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if d := cands[0].Pos.Dist(geom.Vec2{X: 1.3, Z: 1.0}); d > 0.5 {
		t.Fatalf("localization error = %v m", d)
	}
}
