package handwriting

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rfidraw/internal/geom"
)

func TestAlphabetComplete(t *testing.T) {
	ab := Alphabet()
	if len(ab) != 26 {
		t.Fatalf("alphabet size = %d, want 26", len(ab))
	}
	for r := 'a'; r <= 'z'; r++ {
		g, ok := GlyphFor(r)
		if !ok {
			t.Fatalf("missing glyph %q", r)
		}
		if len(g.Points) < 3 {
			t.Fatalf("glyph %q has only %d points", r, len(g.Points))
		}
		if g.Width <= 0 || g.Width > 1.2 {
			t.Fatalf("glyph %q width %v out of range", r, g.Width)
		}
		for i, p := range g.Points {
			if p.X < -0.1 || p.X > 1.1 || p.Z < Descender-0.05 || p.Z > Ascender+0.05 {
				t.Fatalf("glyph %q point %d = %v outside em box", r, i, p)
			}
		}
	}
	if _, ok := GlyphFor('!'); ok {
		t.Fatal("unsupported rune should not resolve")
	}
}

func TestGlyphsAreDistinct(t *testing.T) {
	// All pairs of normalized glyph shapes must be separated; identical
	// or near-identical letterforms would make recognition impossible.
	shapes := map[rune][]geom.Vec2{}
	for _, r := range Alphabet() {
		g, _ := GlyphFor(r)
		rs := geom.ResamplePolyline(g.Points, 48)
		// Normalize: centre and scale.
		c := geom.Centroid(rs)
		box, _ := geom.Bounds(rs)
		s := math.Max(box.Width(), box.Height())
		for i := range rs {
			rs[i] = rs[i].Sub(c).Scale(1 / s)
		}
		shapes[r] = rs
	}
	for _, a := range Alphabet() {
		for _, b := range Alphabet() {
			if a >= b {
				continue
			}
			var d float64
			for i := range shapes[a] {
				d += shapes[a][i].Dist(shapes[b][i])
			}
			d /= float64(len(shapes[a]))
			if d < 0.02 {
				t.Errorf("glyphs %q and %q nearly identical (mean dist %v)", a, b, d)
			}
		}
	}
}

func TestWriteBasics(t *testing.T) {
	w, err := Write("clear", geom.Vec2{X: 0.5, Z: 1.0}, DefaultStyle(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.Text != "clear" {
		t.Fatal("text")
	}
	if len(w.Letters) != 5 {
		t.Fatalf("letter spans = %d", len(w.Letters))
	}
	if w.Traj.Len() < 100 {
		t.Fatalf("trajectory too sparse: %d points", w.Traj.Len())
	}
	// Spans are ordered and non-overlapping; connector strokes between
	// letters belong to no span (manual segmentation excludes them).
	for i, span := range w.Letters {
		if span.End <= span.Start {
			t.Fatalf("span %d empty: %v", i, span)
		}
		if i > 0 && span.Start < w.Letters[i-1].End {
			t.Fatalf("span %d overlaps previous", i)
		}
	}
	if w.Letters[0].Start != 0 {
		t.Fatal("first span should start at t=0")
	}
	if got := w.Letters[0].Rune; got != 'c' {
		t.Fatalf("first span rune %q", got)
	}
	// Writing advances left to right.
	if w.Traj.End().X <= w.Traj.Start().X {
		t.Fatal("word should advance rightward")
	}
}

func TestWriteErrors(t *testing.T) {
	if _, err := Write("", geom.Vec2{}, DefaultStyle(), nil); err == nil {
		t.Fatal("empty text should error")
	}
	if _, err := Write("a!", geom.Vec2{}, DefaultStyle(), nil); err == nil {
		t.Fatal("unsupported rune should error")
	}
	bad := DefaultStyle()
	bad.LetterHeightM = 0
	if _, err := Write("a", geom.Vec2{}, bad, nil); err == nil {
		t.Fatal("zero letter height should error")
	}
	bad = DefaultStyle()
	bad.SpeedMPS = 0
	if _, err := Write("a", geom.Vec2{}, bad, nil); err == nil {
		t.Fatal("zero speed should error")
	}
}

func TestLetterWidthMatchesPaper(t *testing.T) {
	// §8: "the average width of each letter written is around 10 cm".
	w, err := Write("average", geom.Vec2{}, DefaultStyle(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mean := w.MeanLetterWidth()
	if mean < 0.06 || mean > 0.14 {
		t.Fatalf("mean letter width = %v m, want ≈0.10", mean)
	}
}

func TestWriteTimingMatchesSpeed(t *testing.T) {
	style := DefaultStyle()
	w, err := Write("play", geom.Vec2{}, style, nil)
	if err != nil {
		t.Fatal(err)
	}
	length := w.Traj.ArcLength()
	wantDur := length / style.SpeedMPS
	gotDur := w.Traj.Duration().Seconds()
	if math.Abs(gotDur-wantDur) > wantDur*0.05 {
		t.Fatalf("duration = %v s, want ≈%v s", gotDur, wantDur)
	}
}

func TestLetterPositions(t *testing.T) {
	w, err := Write("ab", geom.Vec2{}, DefaultStyle(), nil)
	if err != nil {
		t.Fatal(err)
	}
	aPts, err := LetterPositions(w.Traj, w.Letters[0], 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(aPts) != 32 {
		t.Fatal("count")
	}
	bPts, err := LetterPositions(w.Traj, w.Letters[1], 32)
	if err != nil {
		t.Fatal(err)
	}
	// The 'b' segment sits to the right of the 'a' segment.
	if geom.Centroid(bPts).X <= geom.Centroid(aPts).X {
		t.Fatal("letter segments out of order")
	}
	// Default n.
	dPts, err := LetterPositions(w.Traj, w.Letters[0], 0)
	if err != nil || len(dPts) != 48 {
		t.Fatalf("default n: %d err=%v", len(dPts), err)
	}
	if _, err := LetterPositions(w.Traj, LetterSpan{}, -1); err != nil {
		t.Fatal("zero span should still sample (clamped)")
	}
}

func TestRandomStyleVariesUsers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s1 := RandomStyle(rng)
	s2 := RandomStyle(rng)
	if s1 == s2 {
		t.Fatal("two random styles should differ")
	}
	w1, err := Write("play", geom.Vec2{}, s1, rng)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Write("play", geom.Vec2{}, s2, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Same word, different users → different traces.
	d := w1.Traj.Start().Dist(w2.Traj.Start()) + w1.Traj.End().Dist(w2.Traj.End())
	if d < 1e-6 {
		t.Fatal("styles did not change the trace")
	}
}

func TestWriteDeterministicWithSeed(t *testing.T) {
	s := RandomStyle(rand.New(rand.NewSource(5)))
	w1, _ := Write("word", geom.Vec2{}, s, rand.New(rand.NewSource(42)))
	w2, _ := Write("word", geom.Vec2{}, s, rand.New(rand.NewSource(42)))
	if w1.Traj.Len() != w2.Traj.Len() {
		t.Fatal("nondeterministic length")
	}
	for i := range w1.Traj.Points {
		if w1.Traj.Points[i].Pos != w2.Traj.Points[i].Pos {
			t.Fatal("nondeterministic positions")
		}
	}
}

func TestBounds(t *testing.T) {
	w, _ := Write("on", geom.Vec2{X: 1, Z: 2}, DefaultStyle(), nil)
	r, ok := w.Bounds()
	if !ok {
		t.Fatal("bounds")
	}
	if r.Min.X < 0.9 || r.Max.Z > 2.3 {
		t.Fatalf("bounds = %+v", r)
	}
}

// Property: any word over the alphabet renders without error, with
// monotone timestamps and one span per rune.
func TestQuickWriteWellFormed(t *testing.T) {
	ab := Alphabet()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ln := 1 + int(n%8)
		runes := make([]rune, ln)
		for i := range runes {
			runes[i] = ab[rng.Intn(len(ab))]
		}
		w, err := Write(string(runes), geom.Vec2{}, RandomStyle(rng), rng)
		if err != nil {
			return false
		}
		if len(w.Letters) != ln {
			return false
		}
		for i := 1; i < w.Traj.Len(); i++ {
			if w.Traj.Points[i].T < w.Traj.Points[i-1].T {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
