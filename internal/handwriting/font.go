// Package handwriting generates in-air handwriting trajectories: the
// workload of the paper's evaluation (§8), where users write words with an
// RFID on their finger, each letter ≈10 cm wide. Letters come from an
// original single-stroke polyline font (in-air writing never lifts the
// "pen", so every word is one continuous trajectory), layered with a
// per-user style model: slant, size jitter, baseline wobble, point noise
// and speed variation.
package handwriting

import (
	"math"

	"rfidraw/internal/geom"
)

// Glyph is one letterform: a continuous polyline in em units. x spans
// [0, Width]; z spans [Descender, Ascender] with the baseline at 0.
type Glyph struct {
	Points []geom.Vec2
	// Width is the advance width in em units.
	Width float64
}

// Font metrics in em units.
const (
	// XHeight is the height of lowercase letter bodies.
	XHeight = 0.66
	// Ascender is the top of tall letters (b, d, f, h, k, l, t).
	Ascender = 1.0
	// Descender is the bottom of descending letters (g, j, p, q, y).
	Descender = -0.33
)

// arc appends n+1 points approximating a circular arc from angle a0 to a1
// (radians, counterclockwise when a1 > a0) around (cx, cz).
func arc(pts []geom.Vec2, cx, cz, r, a0, a1 float64, n int) []geom.Vec2 {
	for i := 0; i <= n; i++ {
		a := a0 + (a1-a0)*float64(i)/float64(n)
		pts = append(pts, geom.Vec2{X: cx + r*math.Cos(a), Z: cz + r*math.Sin(a)})
	}
	return pts
}

func deg(d float64) float64 { return d * math.Pi / 180 }

// bowl is the common rounded body used by a, d, g, q: a near-full circle
// of radius r centred at (cx, cz), starting and ending at its right side.
func bowl(cx, cz, r float64) []geom.Vec2 {
	return arc(nil, cx, cz, r, deg(40), deg(40-360), 14)
}

// glyphs maps each supported rune to its letterform. The shapes are
// original simplified print-style forms designed to be mutually
// distinguishable after shape normalization.
var glyphs = map[rune]Glyph{
	'a': {Points: append(bowl(0.42, 0.33, 0.30), geom.Vec2{X: 0.72, Z: 0.45}, geom.Vec2{X: 0.72, Z: 0.0}), Width: 0.80},
	'b': {Points: append([]geom.Vec2{{X: 0.18, Z: Ascender}, {X: 0.18, Z: 0.0}, {X: 0.18, Z: 0.15}},
		arc(nil, 0.45, 0.33, 0.29, deg(220), deg(-140), 12)...), Width: 0.80},
	'c': {Points: arc(nil, 0.50, 0.33, 0.32, deg(55), deg(305), 12), Width: 0.80},
	'd': {Points: append(bowl(0.42, 0.33, 0.30), geom.Vec2{X: 0.72, Z: Ascender}, geom.Vec2{X: 0.72, Z: 0.0}), Width: 0.80},
	'e': {Points: append([]geom.Vec2{{X: 0.20, Z: 0.36}, {X: 0.80, Z: 0.36}},
		arc(nil, 0.50, 0.33, 0.31, deg(6), deg(-295), 12)...), Width: 0.86},
	'f': {Points: []geom.Vec2{{X: 0.62, Z: 0.92}, {X: 0.50, Z: Ascender}, {X: 0.36, Z: 0.92}, {X: 0.34, Z: 0.70},
		{X: 0.34, Z: 0.0}, {X: 0.34, Z: 0.52}, {X: 0.12, Z: 0.52}, {X: 0.62, Z: 0.52}}, Width: 0.72},
	'g': {Points: append(bowl(0.42, 0.36, 0.28), geom.Vec2{X: 0.70, Z: 0.45}, geom.Vec2{X: 0.70, Z: -0.15},
		geom.Vec2{X: 0.55, Z: Descender}, geom.Vec2{X: 0.28, Z: -0.24}), Width: 0.80},
	'h': {Points: []geom.Vec2{{X: 0.18, Z: Ascender}, {X: 0.18, Z: 0.0}, {X: 0.18, Z: 0.42},
		{X: 0.40, Z: 0.64}, {X: 0.62, Z: 0.60}, {X: 0.72, Z: 0.40}, {X: 0.72, Z: 0.0}}, Width: 0.82},
	'i': {Points: []geom.Vec2{{X: 0.46, Z: 0.94}, {X: 0.54, Z: 0.88}, {X: 0.50, Z: XHeight}, {X: 0.50, Z: 0.0}}, Width: 0.46},
	'j': {Points: []geom.Vec2{{X: 0.52, Z: 0.94}, {X: 0.60, Z: 0.88}, {X: 0.56, Z: XHeight}, {X: 0.56, Z: -0.15},
		{X: 0.42, Z: Descender}, {X: 0.20, Z: -0.22}}, Width: 0.62},
	'k': {Points: []geom.Vec2{{X: 0.18, Z: Ascender}, {X: 0.18, Z: 0.0}, {X: 0.18, Z: 0.34},
		{X: 0.66, Z: 0.62}, {X: 0.34, Z: 0.40}, {X: 0.70, Z: 0.0}}, Width: 0.78},
	'l': {Points: []geom.Vec2{{X: 0.44, Z: Ascender}, {X: 0.44, Z: 0.10}, {X: 0.58, Z: 0.0}, {X: 0.66, Z: 0.06}}, Width: 0.56},
	'm': {Points: append(append([]geom.Vec2{{X: 0.12, Z: XHeight}, {X: 0.12, Z: 0.0}, {X: 0.12, Z: 0.40}},
		arc(nil, 0.30, 0.42, 0.18, deg(160), deg(20), 6)...),
		append([]geom.Vec2{{X: 0.47, Z: 0.0}, {X: 0.47, Z: 0.40}},
			append(arc(nil, 0.65, 0.42, 0.18, deg(160), deg(20), 6), geom.Vec2{X: 0.82, Z: 0.0})...)...), Width: 0.94},
	'n': {Points: append(append([]geom.Vec2{{X: 0.18, Z: XHeight}, {X: 0.18, Z: 0.0}, {X: 0.18, Z: 0.40}},
		arc(nil, 0.45, 0.40, 0.27, deg(160), deg(20), 8)...), geom.Vec2{X: 0.70, Z: 0.0}), Width: 0.80},
	'o': {Points: arc(nil, 0.48, 0.33, 0.31, deg(90), deg(-270), 14), Width: 0.84},
	'p': {Points: append([]geom.Vec2{{X: 0.18, Z: XHeight}, {X: 0.18, Z: Descender}, {X: 0.18, Z: 0.12}},
		arc(nil, 0.46, 0.34, 0.28, deg(215), deg(-145), 12)...), Width: 0.80},
	'q': {Points: append(bowl(0.42, 0.36, 0.28), geom.Vec2{X: 0.70, Z: 0.45}, geom.Vec2{X: 0.70, Z: Descender},
		geom.Vec2{X: 0.84, Z: -0.20}), Width: 0.84},
	'r': {Points: []geom.Vec2{{X: 0.22, Z: XHeight}, {X: 0.22, Z: 0.0}, {X: 0.22, Z: 0.40},
		{X: 0.42, Z: 0.62}, {X: 0.64, Z: 0.56}}, Width: 0.66},
	's': {Points: append(arc(nil, 0.48, 0.50, 0.17, deg(70), deg(250), 8),
		arc(nil, 0.44, 0.17, 0.17, deg(110), deg(-110), 8)...), Width: 0.74},
	't': {Points: []geom.Vec2{{X: 0.44, Z: Ascender}, {X: 0.44, Z: 0.10}, {X: 0.58, Z: 0.0}, {X: 0.68, Z: 0.10},
		{X: 0.44, Z: 0.30}, {X: 0.44, Z: XHeight}, {X: 0.18, Z: XHeight}, {X: 0.70, Z: XHeight}}, Width: 0.76},
	'u': {Points: append(append([]geom.Vec2{{X: 0.18, Z: XHeight}},
		arc(nil, 0.45, 0.26, 0.27, deg(180), deg(320), 8)...),
		geom.Vec2{X: 0.72, Z: XHeight}, geom.Vec2{X: 0.72, Z: 0.0}), Width: 0.82},
	'v': {Points: []geom.Vec2{{X: 0.16, Z: XHeight}, {X: 0.45, Z: 0.0}, {X: 0.74, Z: XHeight}}, Width: 0.80},
	'w': {Points: []geom.Vec2{{X: 0.10, Z: XHeight}, {X: 0.28, Z: 0.0}, {X: 0.46, Z: 0.44},
		{X: 0.64, Z: 0.0}, {X: 0.82, Z: XHeight}}, Width: 0.92},
	'x': {Points: []geom.Vec2{{X: 0.16, Z: XHeight}, {X: 0.72, Z: 0.0}, {X: 0.44, Z: 0.33},
		{X: 0.16, Z: 0.0}, {X: 0.72, Z: XHeight}}, Width: 0.80},
	'y': {Points: []geom.Vec2{{X: 0.16, Z: XHeight}, {X: 0.44, Z: 0.08}, {X: 0.72, Z: XHeight},
		{X: 0.40, Z: Descender}, {X: 0.22, Z: -0.26}}, Width: 0.80},
	'z': {Points: []geom.Vec2{{X: 0.18, Z: XHeight}, {X: 0.72, Z: XHeight}, {X: 0.18, Z: 0.0},
		{X: 0.72, Z: 0.0}}, Width: 0.80},
}

// GlyphFor returns the letterform for r; ok is false for unsupported runes.
func GlyphFor(r rune) (Glyph, bool) {
	g, ok := glyphs[r]
	return g, ok
}

// Alphabet returns the supported runes in alphabetical order.
func Alphabet() []rune {
	out := make([]rune, 0, len(glyphs))
	for r := 'a'; r <= 'z'; r++ {
		if _, ok := glyphs[r]; ok {
			out = append(out, r)
		}
	}
	return out
}
