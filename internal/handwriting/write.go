package handwriting

import (
	"fmt"
	"math/rand"
	"time"

	"rfidraw/internal/geom"
	"rfidraw/internal/traj"
)

// Style is a per-user writing style: the knobs that make five users write
// the same word differently (§8 runs five users).
type Style struct {
	// LetterHeightM scales the font: the em height in metres. The paper
	// reports letters ≈10 cm wide; an em height of 0.12 m makes letter
	// segments (glyph plus its entry connector stroke) about that wide.
	LetterHeightM float64
	// SpacingEm is the gap between letters in em units.
	SpacingEm float64
	// SlantShear shears x by SlantShear·z (italic slant).
	SlantShear float64
	// SizeJitter is the per-letter relative size variation (stddev).
	SizeJitter float64
	// BaselineWobbleM is the per-letter baseline offset stddev (m).
	BaselineWobbleM float64
	// PointJitterM is smooth per-vertex noise (m): hand tremor.
	PointJitterM float64
	// SpeedMPS is the writing speed along the stroke (m/s).
	SpeedMPS float64
	// SpeedJitter is the per-letter relative speed variation (stddev).
	SpeedJitter float64
}

// DefaultStyle is a neutral style with ≈10 cm letters written at a natural
// hand speed.
func DefaultStyle() Style {
	return Style{
		LetterHeightM:   0.12,
		SpacingEm:       0.18,
		SlantShear:      0,
		SizeJitter:      0,
		BaselineWobbleM: 0,
		PointJitterM:    0,
		SpeedMPS:        0.35,
		SpeedJitter:     0,
	}
}

// RandomStyle draws a plausible user style around the default: slanted up
// to ±15°, ±10% letter size, small wobble and tremor, ±20% speed.
func RandomStyle(rng *rand.Rand) Style {
	s := DefaultStyle()
	s.SlantShear = (rng.Float64()*2 - 1) * 0.26 // tan(±15°)
	s.LetterHeightM *= 1 + (rng.Float64()*2-1)*0.15
	s.SizeJitter = 0.05 + rng.Float64()*0.05
	s.BaselineWobbleM = 0.002 + rng.Float64()*0.004
	s.PointJitterM = 0.0015 + rng.Float64()*0.0025
	s.SpeedMPS *= 1 + (rng.Float64()*2-1)*0.2
	s.SpeedJitter = 0.05 + rng.Float64()*0.1
	return s
}

// LetterSpan locates one letter inside a written word's trajectory. The
// paper segments words into letters manually (§9.3's limitation); spans
// are this reproduction's equivalent of that manual segmentation.
type LetterSpan struct {
	Rune rune
	// Start and End bound the letter in trace time (inclusive start,
	// exclusive end).
	Start, End time.Duration
}

// Word is a written word: one continuous in-air trajectory plus the letter
// segmentation.
type Word struct {
	Text    string
	Traj    traj.Trajectory
	Letters []LetterSpan
}

// sampleSpacing is the arc-length spacing of generated trajectory points.
const sampleSpacing = 0.004 // 4 mm

// Write renders text as an in-air trajectory starting with the first
// letter's origin at start. rng supplies style jitter and may be nil when
// the style has no random components.
func Write(text string, start geom.Vec2, style Style, rng *rand.Rand) (Word, error) {
	if text == "" {
		return Word{}, fmt.Errorf("handwriting: empty text")
	}
	if style.LetterHeightM <= 0 || style.SpeedMPS <= 0 {
		return Word{}, fmt.Errorf("handwriting: style needs positive letter height and speed")
	}
	jitter := func(sd float64) float64 {
		if rng == nil || sd == 0 {
			return 0
		}
		return rng.NormFloat64() * sd
	}

	em := style.LetterHeightM
	var dense []geom.Vec2 // densified points of the full word
	type span struct {
		r          rune
		start, end int // index range [start, end) into dense
	}
	var letters []span
	penX := start.X
	for _, r := range text {
		g, ok := GlyphFor(r)
		if !ok {
			return Word{}, fmt.Errorf("handwriting: unsupported rune %q", r)
		}
		scale := em * (1 + jitter(style.SizeJitter))
		base := start.Z + jitter(style.BaselineWobbleM)
		// Transform glyph points into the writing plane.
		pts := make([]geom.Vec2, len(g.Points))
		for i, p := range g.Points {
			x := penX + (p.X+style.SlantShear*p.Z)*scale
			z := base + p.Z*scale
			pts[i] = geom.Vec2{X: x + jitter(style.PointJitterM), Z: z + jitter(style.PointJitterM)}
		}
		// Densify so the sampled trajectory follows curves smoothly.
		n := int(geom.PolylineLength(pts)/sampleSpacing) + 2
		pts = geom.ResamplePolyline(pts, n)
		if len(dense) > 0 {
			// Densify the in-air connector stroke from the previous
			// glyph's exit to this glyph's entry. Connector points
			// belong to no letter span: they are the transition a
			// human segmenter excludes.
			conn := []geom.Vec2{dense[len(dense)-1], pts[0]}
			cn := int(geom.PolylineLength(conn)/sampleSpacing) + 2
			conn = geom.ResamplePolyline(conn, cn)
			dense = append(dense, conn[1:len(conn)-1]...)
		}
		letters = append(letters, span{r: r, start: len(dense), end: len(dense) + len(pts)})
		dense = append(dense, pts...)
		penX += (g.Width + style.SpacingEm) * scale
	}

	// Assign times by arc length at (jittered per-letter) speed.
	points := make([]traj.Point, len(dense))
	times := make([]time.Duration, len(dense))
	t := time.Duration(0)
	letter := 0
	speed := style.SpeedMPS * (1 + jitter(style.SpeedJitter))
	for i, p := range dense {
		if i > 0 {
			d := p.Dist(dense[i-1])
			t += time.Duration(float64(time.Second) * d / speed)
		}
		points[i] = traj.Point{T: t, Pos: p}
		times[i] = t
		if letter < len(letters) && i == letters[letter].end-1 {
			letter++
			if letter < len(letters) {
				speed = style.SpeedMPS * (1 + jitter(style.SpeedJitter))
			}
		}
	}
	spans := make([]LetterSpan, len(letters))
	for i, l := range letters {
		spans[i] = LetterSpan{Rune: l.r, Start: times[l.start], End: times[l.end-1] + time.Nanosecond}
	}
	return Word{Text: text, Traj: traj.Trajectory{Points: points}, Letters: spans}, nil
}

// LetterPositions extracts the trajectory positions belonging to one
// letter span from a (possibly reconstructed) trajectory time-aligned with
// the written word.
func LetterPositions(t traj.Trajectory, span LetterSpan, n int) ([]geom.Vec2, error) {
	if n <= 0 {
		n = 48
	}
	if t.Len() == 0 {
		return nil, fmt.Errorf("handwriting: empty trajectory")
	}
	out := make([]geom.Vec2, n)
	dur := span.End - span.Start
	for i := 0; i < n; i++ {
		tau := span.Start
		if n > 1 {
			tau = span.Start + time.Duration(float64(dur)*float64(i)/float64(n-1))
		}
		p, err := t.At(tau)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// Bounds returns the word's bounding box.
func (w Word) Bounds() (geom.Rect, bool) { return geom.Bounds(w.Traj.Positions()) }

// MeanLetterWidth reports the average rendered letter width in metres —
// the quantity the paper quotes as ≈10 cm.
func (w Word) MeanLetterWidth() float64 {
	if len(w.Letters) == 0 {
		return 0
	}
	var sum float64
	count := 0
	for _, span := range w.Letters {
		pts, err := LetterPositions(w.Traj, span, 32)
		if err != nil {
			continue
		}
		if r, ok := geom.Bounds(pts); ok {
			sum += r.Width()
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
