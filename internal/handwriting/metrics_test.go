package handwriting

import (
	"testing"

	"rfidraw/internal/geom"
)

// TestGlyphMetrics checks typographic structure: ascending letters reach
// above the x-height, descending letters drop below the baseline, and
// plain lowercase bodies stay within [0, x-height] with small tolerance.
func TestGlyphMetrics(t *testing.T) {
	ascenders := "bdfhklt"
	descenders := "gjpqy"
	plain := "aceimnorsuvwxz"

	maxZ := func(g Glyph) float64 {
		m := g.Points[0].Z
		for _, p := range g.Points {
			if p.Z > m {
				m = p.Z
			}
		}
		return m
	}
	minZ := func(g Glyph) float64 {
		m := g.Points[0].Z
		for _, p := range g.Points {
			if p.Z < m {
				m = p.Z
			}
		}
		return m
	}
	for _, r := range ascenders {
		g, ok := GlyphFor(r)
		if !ok {
			t.Fatalf("missing %q", r)
		}
		if maxZ(g) < XHeight+0.15 {
			t.Errorf("ascender %q tops at %v, want well above x-height", r, maxZ(g))
		}
	}
	for _, r := range descenders {
		g, _ := GlyphFor(r)
		if minZ(g) > -0.1 {
			t.Errorf("descender %q bottoms at %v, want below baseline", r, minZ(g))
		}
	}
	for _, r := range plain {
		g, _ := GlyphFor(r)
		if maxZ(g) > XHeight+0.35 {
			t.Errorf("plain letter %q tops at %v, too tall", r, maxZ(g))
		}
		if minZ(g) < -0.12 {
			t.Errorf("plain letter %q bottoms at %v, too low", r, minZ(g))
		}
	}
}

// TestWordsDoNotOverlapLetters: consecutive letters' segment bounding
// boxes advance monotonically and stay within sane horizontal overlap.
func TestWordsDoNotOverlapLetters(t *testing.T) {
	w, err := Write("minimum", geom.Vec2{}, DefaultStyle(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var prevCenter float64 = -1e9
	for i, span := range w.Letters {
		pts, err := LetterPositions(w.Traj, span, 32)
		if err != nil {
			t.Fatal(err)
		}
		c := geom.Centroid(pts)
		if c.X <= prevCenter {
			t.Fatalf("letter %d centroid %v does not advance", i, c.X)
		}
		prevCenter = c.X
	}
}

// TestSlantSkewsGlyphs: a slanted style leans tall letters rightward.
func TestSlantSkewsGlyphs(t *testing.T) {
	style := DefaultStyle()
	style.SlantShear = 0.3
	w, err := Write("l", geom.Vec2{}, style, nil)
	if err != nil {
		t.Fatal(err)
	}
	top := w.Traj.Points[0].Pos // 'l' starts at its top
	var bottom geom.Vec2
	minZ := 1e9
	for _, p := range w.Traj.Points {
		if p.Pos.Z < minZ {
			minZ = p.Pos.Z
			bottom = p.Pos
		}
	}
	if top.X <= bottom.X {
		t.Fatalf("positive shear should push the top right: top %v bottom %v", top, bottom)
	}
}
