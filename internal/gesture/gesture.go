// Package gesture classifies short in-air motions into interface commands:
// swipes, taps and circles. The paper positions RF-IDraw as a *richer*
// alternative to fixed-gesture interfaces (§9.3) — but a virtual touch
// screen still needs the basic gestures (scroll, swipe, select) alongside
// handwriting, so this package provides them on top of traced trajectories.
//
// Classification is rule-based on simple trajectory features (net
// displacement vs path length, dominant axis, angular winding), so it
// needs no training — in the spirit of the paper's training-free interface
// argument.
package gesture

import (
	"errors"
	"math"

	"rfidraw/internal/geom"
	"rfidraw/internal/traj"
)

// Command is a recognized interface command.
type Command string

// Recognized commands.
const (
	SwipeLeft  Command = "swipe-left"
	SwipeRight Command = "swipe-right"
	SwipeUp    Command = "swipe-up"
	SwipeDown  Command = "swipe-down"
	Tap        Command = "tap"
	CircleCW   Command = "circle-cw"
	CircleCCW  Command = "circle-ccw"
	Unknown    Command = "unknown"
)

// Config tunes the classifier thresholds (metres/radians).
type Config struct {
	// TapRadius bounds a tap's total extent. Default 0.05 m.
	TapRadius float64
	// MinSwipe is the minimum net displacement of a swipe. Default 0.15 m.
	MinSwipe float64
	// SwipeStraightness is the minimum net/path ratio of a swipe.
	// Default 0.7.
	SwipeStraightness float64
	// MinWinding is the minimum |total turning angle| of a circle.
	// Default 4.0 rad (~64% of a turn: pause segmentation often trims circle endpoints).
	MinWinding float64
	// CircleClosure is the maximum start–end distance of a circle,
	// relative to its bounding-box diagonal. Default 0.5.
	CircleClosure float64
}

func (c Config) withDefaults() Config {
	if c.TapRadius <= 0 {
		c.TapRadius = 0.05
	}
	if c.MinSwipe <= 0 {
		c.MinSwipe = 0.15
	}
	if c.SwipeStraightness <= 0 {
		c.SwipeStraightness = 0.7
	}
	if c.MinWinding <= 0 {
		c.MinWinding = 4.0
	}
	if c.CircleClosure <= 0 {
		c.CircleClosure = 0.5
	}
	return c
}

// Result carries the classification and its supporting features.
type Result struct {
	Command Command
	// Net is the start→end displacement (m).
	Net geom.Vec2
	// PathLen is the total arc length (m).
	PathLen float64
	// Winding is the summed signed turning angle (rad); positive is
	// counter-clockwise.
	Winding float64
}

// Classify identifies the command a trajectory performs.
func Classify(t traj.Trajectory, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if t.Len() < 2 {
		return Result{}, errors.New("gesture: need at least 2 samples")
	}
	// Resample for stable features regardless of sampling rate.
	rs, err := t.Resample(64)
	if err != nil {
		return Result{}, err
	}
	pos := rs.Positions()
	res := Result{
		Net:     pos[len(pos)-1].Sub(pos[0]),
		PathLen: geom.PolylineLength(pos),
		Winding: winding(pos),
	}

	box, _ := geom.Bounds(pos)
	diag := math.Hypot(box.Width(), box.Height())

	switch {
	case diag <= cfg.TapRadius:
		res.Command = Tap
	case math.Abs(res.Winding) >= cfg.MinWinding &&
		pos[0].Dist(pos[len(pos)-1]) <= cfg.CircleClosure*diag:
		if res.Winding > 0 {
			res.Command = CircleCCW
		} else {
			res.Command = CircleCW
		}
	case res.Net.Norm() >= cfg.MinSwipe && res.Net.Norm() >= cfg.SwipeStraightness*res.PathLen:
		if math.Abs(res.Net.X) >= math.Abs(res.Net.Z) {
			if res.Net.X > 0 {
				res.Command = SwipeRight
			} else {
				res.Command = SwipeLeft
			}
		} else {
			if res.Net.Z > 0 {
				res.Command = SwipeUp
			} else {
				res.Command = SwipeDown
			}
		}
	default:
		res.Command = Unknown
	}
	return res, nil
}

// winding sums the signed turning angles along the polyline.
func winding(pos []geom.Vec2) float64 {
	var total float64
	var prev geom.Vec2
	havePrev := false
	for i := 1; i < len(pos); i++ {
		d := pos[i].Sub(pos[i-1])
		if d.Norm() < 1e-9 {
			continue
		}
		if havePrev {
			cross := prev.X*d.Z - prev.Z*d.X
			dot := prev.Dot(d)
			total += math.Atan2(cross, dot)
		}
		prev = d
		havePrev = true
	}
	return total
}

// Segment splits a long trajectory into gesture strokes at pauses: runs of
// at least minPause samples whose step speed falls below speedFloor (m/s).
// A virtual touch screen uses this to separate consecutive commands.
func Segment(t traj.Trajectory, speedFloor float64, minPause int) []traj.Trajectory {
	if t.Len() < 2 {
		return nil
	}
	if speedFloor <= 0 {
		speedFloor = 0.05
	}
	if minPause <= 0 {
		minPause = 3
	}
	var out []traj.Trajectory
	start := 0
	slow := 0
	for i := 1; i < t.Len(); i++ {
		dt := t.Points[i].T - t.Points[i-1].T
		speed := math.Inf(1)
		if dt > 0 {
			speed = t.Points[i].Pos.Dist(t.Points[i-1].Pos) / dt.Seconds()
		}
		if speed < speedFloor {
			slow++
			if slow == minPause && i-minPause > start {
				out = append(out, traj.Trajectory{Points: t.Points[start : i-minPause+1]})
				start = i
			}
		} else {
			if slow >= minPause {
				start = i - 1
			}
			slow = 0
		}
	}
	if t.Len()-start >= 2 {
		out = append(out, traj.Trajectory{Points: t.Points[start:]})
	}
	return out
}
