package gesture

import (
	"math"
	"testing"
	"time"

	"rfidraw/internal/geom"
	"rfidraw/internal/traj"
)

func mkTraj(pos []geom.Vec2) traj.Trajectory {
	return traj.FromPositions(pos, 25*time.Millisecond)
}

func linePath(from, to geom.Vec2, n int) []geom.Vec2 {
	out := make([]geom.Vec2, n)
	for i := range out {
		out[i] = from.Lerp(to, float64(i)/float64(n-1))
	}
	return out
}

func circlePath(c geom.Vec2, r float64, n int, ccw bool) []geom.Vec2 {
	out := make([]geom.Vec2, n)
	for i := range out {
		th := 2 * math.Pi * float64(i) / float64(n-1)
		if !ccw {
			th = -th
		}
		out[i] = geom.Vec2{X: c.X + r*math.Cos(th), Z: c.Z + r*math.Sin(th)}
	}
	return out
}

func TestClassifySwipes(t *testing.T) {
	cases := []struct {
		name string
		from geom.Vec2
		to   geom.Vec2
		want Command
	}{
		{"right", geom.Vec2{X: 0.5, Z: 1}, geom.Vec2{X: 1.0, Z: 1}, SwipeRight},
		{"left", geom.Vec2{X: 1.0, Z: 1}, geom.Vec2{X: 0.5, Z: 1}, SwipeLeft},
		{"up", geom.Vec2{X: 1, Z: 0.5}, geom.Vec2{X: 1, Z: 1.0}, SwipeUp},
		{"down", geom.Vec2{X: 1, Z: 1.0}, geom.Vec2{X: 1, Z: 0.5}, SwipeDown},
	}
	for _, tc := range cases {
		res, err := Classify(mkTraj(linePath(tc.from, tc.to, 30)), Config{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Command != tc.want {
			t.Errorf("%s: got %q", tc.name, res.Command)
		}
	}
}

func TestClassifyTap(t *testing.T) {
	pos := make([]geom.Vec2, 20)
	for i := range pos {
		pos[i] = geom.Vec2{X: 1 + 0.005*math.Sin(float64(i)), Z: 1 + 0.005*math.Cos(float64(i))}
	}
	res, err := Classify(mkTraj(pos), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Command != Tap {
		t.Fatalf("got %q", res.Command)
	}
}

func TestClassifyCircles(t *testing.T) {
	ccw, err := Classify(mkTraj(circlePath(geom.Vec2{X: 1, Z: 1}, 0.15, 48, true)), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ccw.Command != CircleCCW {
		t.Fatalf("ccw circle got %q (winding %v)", ccw.Command, ccw.Winding)
	}
	cw, err := Classify(mkTraj(circlePath(geom.Vec2{X: 1, Z: 1}, 0.15, 48, false)), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if cw.Command != CircleCW {
		t.Fatalf("cw circle got %q (winding %v)", cw.Command, cw.Winding)
	}
	if !(ccw.Winding > 0 && cw.Winding < 0) {
		t.Fatalf("winding signs: %v / %v", ccw.Winding, cw.Winding)
	}
}

func TestClassifyUnknown(t *testing.T) {
	// A meandering short scribble: too long for a tap, too curvy for a
	// swipe, not enough winding for a circle.
	pos := []geom.Vec2{{X: 1, Z: 1}, {X: 1.1, Z: 1.1}, {X: 1.0, Z: 1.2}, {X: 1.1, Z: 1.3}, {X: 0.95, Z: 1.35}}
	res, err := Classify(mkTraj(pos), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Command != Unknown {
		t.Fatalf("got %q", res.Command)
	}
}

func TestClassifyErrors(t *testing.T) {
	if _, err := Classify(traj.Trajectory{}, Config{}); err == nil {
		t.Fatal("empty should error")
	}
	if _, err := Classify(mkTraj([]geom.Vec2{{X: 1, Z: 1}}), Config{}); err == nil {
		t.Fatal("single sample should error")
	}
}

func TestSegmentSplitsAtPauses(t *testing.T) {
	// Stroke right, pause, stroke up.
	var pos []geom.Vec2
	pos = append(pos, linePath(geom.Vec2{X: 0.5, Z: 1}, geom.Vec2{X: 1.0, Z: 1}, 20)...)
	for i := 0; i < 8; i++ {
		pos = append(pos, geom.Vec2{X: 1.0, Z: 1}) // pause
	}
	pos = append(pos, linePath(geom.Vec2{X: 1.0, Z: 1}, geom.Vec2{X: 1.0, Z: 1.5}, 20)...)
	segs := Segment(mkTraj(pos), 0.05, 3)
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	r1, err := Classify(segs[0], Config{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Classify(segs[1], Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Command != SwipeRight || r2.Command != SwipeUp {
		t.Fatalf("segment commands: %q, %q", r1.Command, r2.Command)
	}
}

func TestSegmentDegenerate(t *testing.T) {
	if segs := Segment(traj.Trajectory{}, 0.05, 3); segs != nil {
		t.Fatal("empty should segment to nil")
	}
	// A single continuous stroke yields one segment.
	segs := Segment(mkTraj(linePath(geom.Vec2{}, geom.Vec2{X: 1}, 30)), 0.05, 3)
	if len(segs) != 1 {
		t.Fatalf("continuous stroke segments = %d", len(segs))
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.TapRadius <= 0 || cfg.MinSwipe <= 0 || cfg.SwipeStraightness <= 0 ||
		cfg.MinWinding <= 0 || cfg.CircleClosure <= 0 {
		t.Fatalf("defaults missing: %+v", cfg)
	}
}
