// Package baseline implements the scheme RF-IDraw is compared against
// (§6/§8 of the paper, reference [12]): a state-of-the-art antenna-array
// angle-of-arrival system using the same total number of antennas. Two
// 4-element uniform linear arrays with λ/4 spacing (backscatter-equivalent
// of λ/2) each estimate the tag's AoA with a Bartlett beam scan; the two
// direction rays are intersected to place the tag, independently for every
// sample.
//
// Because each position estimate is independent, the baseline's errors are
// random and uncorrelated along a trajectory — exactly why its reconstructed
// words are unrecognizable (§9) while RF-IDraw's coherent errors preserve
// shape.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"rfidraw/internal/deploy"
	"rfidraw/internal/geom"
	"rfidraw/internal/tracing"
	"rfidraw/internal/traj"
	"rfidraw/internal/vote"
)

// Config tunes the baseline positioner.
type Config struct {
	// Plane is the writing plane.
	Plane geom.Plane
	// Region clips estimates (readers know the room bounds).
	Region geom.Rect
	// ThetaScan is the number of angles scanned per AoA estimate.
	// Default 720 (0.25° resolution).
	ThetaScan int
	// NearField strengthens the baseline beyond the published scheme:
	// instead of the far-field ray intersection of [12], it solves the
	// near-field cone intersection numerically. The default (false)
	// reproduces the compared scheme as the paper describes it; the
	// ablation benches quantify how much the stronger variant helps.
	NearField bool
}

func (c Config) withDefaults() Config {
	if c.ThetaScan <= 0 {
		c.ThetaScan = 720
	}
	return c
}

// System is the two-array AoA baseline.
type System struct {
	dep *deploy.Baseline
	cfg Config
}

// New builds the baseline system.
func New(dep *deploy.Baseline, cfg Config) (*System, error) {
	if dep == nil {
		return nil, errors.New("baseline: nil deployment")
	}
	cfg = cfg.withDefaults()
	if cfg.Region.Width() <= 0 || cfg.Region.Height() <= 0 {
		return nil, fmt.Errorf("baseline: degenerate region %+v", cfg.Region)
	}
	return &System{dep: dep, cfg: cfg}, nil
}

// Config returns the effective configuration.
func (s *System) Config() Config { return s.cfg }

// arrayPhases extracts an array's per-element phases from merged
// observations; ok is false if any element is missing.
func arrayPhases(els []int, obs vote.Observations) ([]float64, bool) {
	out := make([]float64, len(els))
	for i, id := range els {
		p, ok := obs[id]
		if !ok {
			return nil, false
		}
		out[i] = p
	}
	return out, true
}

// Localize estimates the tag position from one sample by intersecting the
// two arrays' AoA estimates in the writing plane.
//
// The published scheme ([12], §6: "the beams of the arrays are intersected
// to estimate the RFID position") treats each AoA as a planar ray from the
// array centre and intersects the two rays — the standard far-field
// approach, whose approximation error grows at close range because the
// writing plane sits 2–5 m off the wall (an AoA really constrains the tag
// to a *cone*). With Config.NearField the baseline instead solves the cone
// intersection numerically (coarse grid + pattern search), a strengthened
// variant we use for ablations.
func (s *System) Localize(obs vote.Observations) (geom.Vec2, error) {
	leftIDs := []int{1, 2, 3, 4}
	bottomIDs := []int{5, 6, 7, 8}
	lp, ok := arrayPhases(leftIDs, obs)
	if !ok {
		return geom.Vec2{}, errors.New("baseline: left array phases incomplete")
	}
	bp, ok := arrayPhases(bottomIDs, obs)
	if !ok {
		return geom.Vec2{}, errors.New("baseline: bottom array phases incomplete")
	}
	thetaL, err := s.dep.Left.PeakAoA(lp, s.cfg.ThetaScan)
	if err != nil {
		return geom.Vec2{}, err
	}
	thetaB, err := s.dep.Bottom.PeakAoA(bp, s.cfg.ThetaScan)
	if err != nil {
		return geom.Vec2{}, err
	}
	if !s.cfg.NearField {
		return s.localizeFarField(thetaL, thetaB)
	}
	cosL, cosB := math.Cos(thetaL), math.Cos(thetaB)

	obj := func(p geom.Vec2) float64 {
		p3 := s.cfg.Plane.To3D(p)
		dl := cosToSource(s.dep.Left.Center(), s.dep.Left.Axis(), p3) - cosL
		db := cosToSource(s.dep.Bottom.Center(), s.dep.Bottom.Axis(), p3) - cosB
		return dl*dl + db*db
	}
	// Coarse scan.
	const coarse = 0.06
	best := s.cfg.Region.Center()
	bestJ := obj(best)
	for x := s.cfg.Region.Min.X; x <= s.cfg.Region.Max.X; x += coarse {
		for z := s.cfg.Region.Min.Z; z <= s.cfg.Region.Max.Z; z += coarse {
			p := geom.Vec2{X: x, Z: z}
			if j := obj(p); j < bestJ {
				bestJ, best = j, p
			}
		}
	}
	// Pattern-search refinement.
	step := coarse / 2
	for step >= 0.002 {
		improved := false
		for dx := -1; dx <= 1; dx++ {
			for dz := -1; dz <= 1; dz++ {
				if dx == 0 && dz == 0 {
					continue
				}
				cand := s.cfg.Region.Clip(geom.Vec2{X: best.X + float64(dx)*step, Z: best.Z + float64(dz)*step})
				if j := obj(cand); j < bestJ {
					bestJ, best = j, cand
					improved = true
				}
			}
		}
		if !improved {
			step /= 2
		}
	}
	return best, nil
}

// localizeFarField is the published scheme: each AoA becomes a planar ray
// from the array centre in the writing plane, oriented into the room, and
// the two rays are intersected.
func (s *System) localizeFarField(thetaL, thetaB float64) (geom.Vec2, error) {
	rayL := s.orientedRay(s.dep.Left.DirectionRay(thetaL, s.cfg.Plane))
	rayB := s.orientedRay(s.dep.Bottom.DirectionRay(thetaB, s.cfg.Plane))
	p, ok := geom.IntersectRays(rayL, rayB)
	if !ok {
		return geom.Vec2{}, errors.New("baseline: AoA rays are parallel")
	}
	return s.cfg.Region.Clip(p), nil
}

// orientedRay flips a ray's direction when it points away from the search
// region, resolving the linear array's two-sided ambiguity the way a
// deployed system would (the room is on one known side of each array).
func (s *System) orientedRay(r geom.Ray) geom.Ray {
	if r.Dir.Dot(s.cfg.Region.Center().Sub(r.Origin)) < 0 {
		r.Dir = r.Dir.Scale(-1)
	}
	return r
}

// cosToSource is the cosine of the angle between an array's axis and the
// direction from its phase centre to the source.
func cosToSource(center, axis, src geom.Vec3) float64 {
	d := src.Sub(center)
	n := d.Norm()
	if n == 0 {
		return 0
	}
	return axis.Dot(d) / n
}

// Trace reconstructs a trajectory by localizing every sample
// independently — the baseline has no notion of motion continuity (§8.2).
// Samples whose arrays are incomplete are skipped.
func (s *System) Trace(samples []tracing.Sample) (traj.Trajectory, error) {
	points := make([]traj.Point, 0, len(samples))
	var lastErr error
	for _, sm := range samples {
		p, err := s.Localize(sm.Phase)
		if err != nil {
			lastErr = err
			continue
		}
		points = append(points, traj.Point{T: sm.T, Pos: p})
	}
	if len(points) == 0 {
		if lastErr == nil {
			lastErr = errors.New("no samples")
		}
		return traj.Trajectory{}, fmt.Errorf("baseline: no usable samples: %w", lastErr)
	}
	return traj.Trajectory{Points: points}, nil
}

// Describe returns a short human-readable description for reports.
func (s *System) Describe() string {
	return fmt.Sprintf("antenna-array AoA baseline: 2×4-element λ/4 ULAs, %d-angle Bartlett scan", s.cfg.ThetaScan)
}
