package baseline

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rfidraw/internal/deploy"
	"rfidraw/internal/geom"
	"rfidraw/internal/phys"
	"rfidraw/internal/tracing"
	"rfidraw/internal/traj"
	"rfidraw/internal/vote"
)

var plane = geom.Plane{Y: 2}

func testSystem(t testing.TB) (*System, *deploy.Baseline) {
	t.Helper()
	dep, err := deploy.DefaultBaseline()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(dep, Config{Plane: plane, Region: deploy.DefaultRegion()})
	if err != nil {
		t.Fatal(err)
	}
	return s, dep
}

// synthObs generates per-antenna phases for a source, with optional noise.
func synthObs(dep *deploy.Baseline, src geom.Vec3, noise float64, rng *rand.Rand) vote.Observations {
	obs := vote.Observations{}
	for _, a := range dep.AllAntennas() {
		ph := phys.PathPhase(dep.Carrier, dep.Link, a.Pos.Dist(src))
		if noise > 0 && rng != nil {
			ph += rng.NormFloat64() * noise
		}
		obs[a.ID] = phys.Wrap(ph)
	}
	return obs
}

func TestNewValidation(t *testing.T) {
	dep, _ := deploy.DefaultBaseline()
	if _, err := New(nil, Config{Plane: plane, Region: deploy.DefaultRegion()}); err == nil {
		t.Fatal("nil deployment should error")
	}
	if _, err := New(dep, Config{Plane: plane}); err == nil {
		t.Fatal("degenerate region should error")
	}
	s, err := New(dep, Config{Plane: plane, Region: deploy.DefaultRegion()})
	if err != nil {
		t.Fatal(err)
	}
	if s.Config().ThetaScan <= 0 {
		t.Fatal("defaults not applied")
	}
}

func TestLocalizeNearFieldNoiseless(t *testing.T) {
	// The strengthened (ablation) near-field variant is accurate without
	// noise.
	dep, err := deploy.DefaultBaseline()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(dep, Config{Plane: plane, Region: deploy.DefaultRegion(), NearField: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, src2 := range []geom.Vec2{{X: 1.3, Z: 1.0}, {X: 1.8, Z: 1.4}, {X: 0.9, Z: 0.8}} {
		obs := synthObs(dep, plane.To3D(src2), 0, nil)
		got, err := s.Localize(obs)
		if err != nil {
			t.Fatal(err)
		}
		if d := got.Dist(src2); d > 0.35 {
			t.Errorf("src %v: estimate %v off by %v m", src2, got, d)
		}
	}
}

func TestLocalizeFarFieldHasSystematicBias(t *testing.T) {
	// The published scheme treats each AoA cone as a planar ray; at 2 m
	// off the wall the approximation costs tens of centimetres even with
	// a perfect channel (part of why the paper's baseline sits at a
	// 40.8 cm LOS median). It must still be a usable, bounded estimate.
	s, dep := testSystem(t)
	near, err := New(dep, Config{Plane: plane, Region: deploy.DefaultRegion(), NearField: true})
	if err != nil {
		t.Fatal(err)
	}
	var farSum, nearSum float64
	srcs := []geom.Vec2{{X: 1.3, Z: 1.0}, {X: 1.8, Z: 1.4}, {X: 0.9, Z: 0.8}}
	for _, src2 := range srcs {
		obs := synthObs(dep, plane.To3D(src2), 0, nil)
		gotF, err := s.Localize(obs)
		if err != nil {
			t.Fatal(err)
		}
		gotN, err := near.Localize(obs)
		if err != nil {
			t.Fatal(err)
		}
		dF, dN := gotF.Dist(src2), gotN.Dist(src2)
		if dF > 1.2 {
			t.Errorf("far-field estimate unusable: %v off by %v m", gotF, dF)
		}
		farSum += dF
		nearSum += dN
	}
	if farSum <= nearSum {
		t.Fatalf("far-field total error %v should exceed near-field %v", farSum, nearSum)
	}
}

func TestLocalizeIncompleteArrays(t *testing.T) {
	s, dep := testSystem(t)
	obs := synthObs(dep, plane.To3D(geom.Vec2{X: 1.3, Z: 1.0}), 0, nil)
	delete(obs, 2)
	if _, err := s.Localize(obs); err == nil {
		t.Fatal("missing left-array phase should error")
	}
	obs = synthObs(dep, plane.To3D(geom.Vec2{X: 1.3, Z: 1.0}), 0, nil)
	delete(obs, 7)
	if _, err := s.Localize(obs); err == nil {
		t.Fatal("missing bottom-array phase should error")
	}
}

func TestLocalizeNoisyErrorsAreLarge(t *testing.T) {
	// The headline comparison: with realistic phase noise, the λ/4
	// arrays' wide beams yield decimetre-scale scatter (§8.1 reports a
	// 40.8 cm LOS median for the baseline vs 3.7 cm for RF-IDraw).
	s, dep := testSystem(t)
	rng := rand.New(rand.NewSource(9))
	src2 := geom.Vec2{X: 1.3, Z: 1.0}
	var errs []float64
	for i := 0; i < 60; i++ {
		obs := synthObs(dep, plane.To3D(src2), 0.25, rng)
		got, err := s.Localize(obs)
		if err != nil {
			continue
		}
		errs = append(errs, got.Dist(src2))
	}
	if len(errs) < 50 {
		t.Fatalf("too many failures: %d estimates", len(errs))
	}
	var mean float64
	for _, e := range errs {
		mean += e
	}
	mean /= float64(len(errs))
	if mean < 0.05 {
		t.Fatalf("mean noisy error = %v m; expected decimetre-scale scatter", mean)
	}
}

func TestTraceSkipsBadSamples(t *testing.T) {
	s, dep := testSystem(t)
	src2 := geom.Vec2{X: 1.3, Z: 1.0}
	good := tracing.Sample{T: 0, Phase: synthObs(dep, plane.To3D(src2), 0, nil)}
	bad := tracing.Sample{T: 25 * time.Millisecond, Phase: vote.Observations{1: 0.5}}
	good2 := tracing.Sample{T: 50 * time.Millisecond, Phase: synthObs(dep, plane.To3D(src2), 0, nil)}
	tr, err := s.Trace([]tracing.Sample{good, bad, good2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("traced %d points, want 2 (bad sample skipped)", tr.Len())
	}
	if _, err := s.Trace([]tracing.Sample{bad}); err == nil {
		t.Fatal("all-bad samples should error")
	}
	if _, err := s.Trace(nil); err == nil {
		t.Fatal("empty samples should error")
	}
}

func TestTraceErrorsAreIncoherent(t *testing.T) {
	// §8.1: removing the initial offset does NOT help the baseline —
	// its per-sample errors are independent. Verify that initial-offset
	// alignment is no better than mean alignment, unlike RF-IDraw.
	s, dep := testSystem(t)
	rng := rand.New(rand.NewSource(10))
	n := 80
	path := make([]geom.Vec2, n)
	for i := range path {
		th := 2 * math.Pi * float64(i) / float64(n)
		path[i] = geom.Vec2{X: 1.3 + 0.07*math.Cos(th), Z: 1.0 + 0.07*math.Sin(th)}
	}
	samples := make([]tracing.Sample, n)
	for i, p := range path {
		samples[i] = tracing.Sample{
			T:     time.Duration(i) * 25 * time.Millisecond,
			Phase: synthObs(dep, plane.To3D(p), 0.25, rng),
		}
	}
	rec, err := s.Trace(samples)
	if err != nil {
		t.Fatal(err)
	}
	truth := traj.FromPositions(path, 25*time.Millisecond)
	medInit, _ := traj.MedianError(truth, rec, traj.AlignInitial, n)
	medMean, _ := traj.MedianError(truth, rec, traj.AlignMean, n)
	// Mean alignment should be at least as good (the paper grants the
	// baseline this favourable metric).
	if medMean > medInit*1.5 {
		t.Fatalf("mean-aligned error %v should not be much worse than initial-aligned %v", medMean, medInit)
	}
	if medMean < 0.03 {
		t.Fatalf("baseline shape error %v suspiciously small", medMean)
	}
}

func TestCosToSource(t *testing.T) {
	center := geom.Vec3{X: 0, Y: 0, Z: 0}
	axis := geom.Vec3{Z: 1}
	// A source along the axis has cos θ = 1; broadside has 0.
	if got := cosToSource(center, axis, geom.Vec3{Z: 3}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("axial cos = %v", got)
	}
	if got := cosToSource(center, axis, geom.Vec3{X: 2, Y: 1}); math.Abs(got) > 1e-12 {
		t.Fatalf("broadside cos = %v", got)
	}
	// Degenerate source at the centre returns 0 rather than NaN.
	if got := cosToSource(center, axis, center); got != 0 {
		t.Fatalf("degenerate cos = %v", got)
	}
}

func TestDescribe(t *testing.T) {
	s, _ := testSystem(t)
	if s.Describe() == "" {
		t.Fatal("empty description")
	}
}
