package rfidraw

import (
	"math"
	"testing"
	"time"

	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/sim"
)

// simSamples converts internal simulator samples to the public type.
func simSamples(t testing.TB, seed int64, word string) ([]Sample, *sim.WordRun, *sim.Scenario) {
	t.Helper()
	sc, err := sim.New(sim.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	wr, err := sc.RunWord(word, geom.Vec2{X: 0.6, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Sample, len(wr.SamplesRF))
	for i, s := range wr.SamplesRF {
		out[i] = Sample{Time: s.T, Phases: map[int]float64(s.Phase)}
	}
	return out, wr, sc
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing plane distance should error")
	}
	if _, err := New(Config{PlaneDistanceM: 2, CarrierHz: -1}); err == nil {
		// negative carrier falls back to default; construction succeeds
		t.Log("negative carrier tolerated (default used)")
	}
	sys, err := New(Config{PlaneDistanceM: 2})
	if err != nil {
		t.Fatal(err)
	}
	ants := sys.AntennaPositions()
	if len(ants) != 8 {
		t.Fatalf("antenna count = %d", len(ants))
	}
	// Antenna 3 is the far corner of the 8λ square.
	want := 8 * WavelengthM(DefaultCarrierHz)
	if math.Abs(ants[3].X-want) > 1e-9 || math.Abs(ants[3].Z-want) > 1e-9 {
		t.Fatalf("antenna 3 at (%v, %v), want (%v, %v)", ants[3].X, ants[3].Z, want, want)
	}
}

func TestCustomRegionAndCarrier(t *testing.T) {
	sys, err := New(Config{
		PlaneDistanceM: 3,
		RegionMin:      Point{X: 0, Z: 0},
		RegionMax:      Point{X: 2, Z: 1.5},
		CandidateCount: 2,
		CarrierHz:      915e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys == nil {
		t.Fatal("nil system")
	}
}

func TestPointDist(t *testing.T) {
	if d := (Point{X: 0, Z: 0}).Dist(Point{X: 3, Z: 4}); d != 5 {
		t.Fatalf("dist = %v", d)
	}
}

func TestPublicTraceEndToEnd(t *testing.T) {
	samples, wr, sc := simSamples(t, 77, "play")
	sys, err := New(Config{PlaneDistanceM: sc.Plane.Y})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Trace(samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) < 20 {
		t.Fatalf("trajectory too short: %d", len(res.Trajectory))
	}
	if res.Chosen < 0 || res.Chosen >= len(res.Traces) {
		t.Fatalf("chosen index %d out of %d traces", res.Chosen, len(res.Traces))
	}
	// The chosen trace must be the one in Trajectory.
	chosen := res.Traces[res.Chosen]
	if len(chosen.Points) != len(res.Trajectory) {
		t.Fatal("chosen trace mismatch")
	}
	// Shape sanity: after removing the initial offset, the end point of
	// the reconstruction should sit near the true end, relative to start.
	trueStart := wr.Truth.Start()
	trueEnd := wr.Truth.End()
	recStart := res.Trajectory[0]
	recEnd := res.Trajectory[len(res.Trajectory)-1]
	wantDX := trueEnd.X - trueStart.X
	gotDX := recEnd.X - recStart.X
	if math.Abs(gotDX-wantDX) > 0.15 {
		t.Fatalf("reconstructed word advance = %v, want ≈%v", gotDX, wantDX)
	}
	// Votes accompany every point.
	if len(chosen.Votes) != len(chosen.Points) {
		t.Fatal("votes not aligned with points")
	}
}

func TestPublicLocalize(t *testing.T) {
	samples, _, sc := simSamples(t, 78, "on")
	sys, err := New(Config{PlaneDistanceM: sc.Plane.Y})
	if err != nil {
		t.Fatal(err)
	}
	// Steady-state sample.
	cands, err := sys.Localize(samples[len(samples)-1])
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Score > cands[i-1].Score {
			t.Fatal("candidates not sorted by score")
		}
	}
}

func TestTraceEmpty(t *testing.T) {
	sys, err := New(Config{PlaneDistanceM: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Trace(nil); err == nil {
		t.Fatal("empty samples should error")
	}
	if _, err := sys.Trace([]Sample{{Time: 0, Phases: map[int]float64{}}}); err == nil {
		t.Fatal("unusable samples should error")
	}
}

func TestSampleTimesPreserved(t *testing.T) {
	samples, _, sc := simSamples(t, 79, "go")
	sys, err := New(Config{PlaneDistanceM: sc.Plane.Y})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Trace(samples)
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Duration = -1
	for _, p := range res.Trajectory {
		if p.Time <= prev {
			t.Fatal("trajectory times not strictly increasing")
		}
		prev = p.Time
	}
}

// TestTraceManyMatchesTrace checks the concurrent multi-tag path returns,
// per tag, exactly what the synchronous path returns.
func TestTraceManyMatchesTrace(t *testing.T) {
	sc, err := sim.New(sim.Config{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	run, err := sc.RunWords([]string{"hi", "go", "on"},
		[]geom.Vec2{{X: 0.4, Z: 1.3}, {X: 1.6, Z: 0.7}, {X: 1.0, Z: 1.6}})
	if err != nil {
		t.Fatal(err)
	}
	streams := map[string][]Sample{}
	for i, tag := range run.Tags {
		ss := make([]Sample, len(run.SamplesRF[i]))
		for j, s := range run.SamplesRF[i] {
			ss[j] = Sample{Time: s.T, Phases: map[int]float64(s.Phase)}
		}
		streams[tag.EPC.String()] = ss
	}

	par, err := New(Config{PlaneDistanceM: 2, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	many, err := par.TraceMany(streams)
	if err != nil {
		t.Fatal(err)
	}
	if len(many) != len(streams) {
		t.Fatalf("traced %d tags, want %d", len(many), len(streams))
	}

	seq, err := New(Config{PlaneDistanceM: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	for key, samples := range streams {
		want, err := seq.Trace(samples)
		if err != nil {
			t.Fatalf("tag %s: %v", key, err)
		}
		got := many[key]
		if got == nil {
			t.Fatalf("tag %s missing from TraceMany", key)
		}
		if len(got.Trajectory) != len(want.Trajectory) {
			t.Fatalf("tag %s: %d points vs %d sequential", key, len(got.Trajectory), len(want.Trajectory))
		}
		for i := range got.Trajectory {
			if got.Trajectory[i] != want.Trajectory[i] {
				t.Fatalf("tag %s point %d: %+v != %+v", key, i, got.Trajectory[i], want.Trajectory[i])
			}
		}
		if got.InitialPosition != want.InitialPosition || got.Chosen != want.Chosen {
			t.Fatalf("tag %s: initial/chosen mismatch", key)
		}
	}
}

func TestTraceManyValidation(t *testing.T) {
	sys, err := New(Config{PlaneDistanceM: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.TraceMany(nil); err == nil {
		t.Fatal("empty stream map should error")
	}
	if _, err := sys.TraceMany(map[string][]Sample{"x": nil}); err == nil {
		t.Fatal("empty per-tag stream should error")
	}
}
