package rfidraw_test

import (
	"fmt"
	"math"
	"time"

	"rfidraw"
)

// syntheticSamples fabricates a noiseless observation stream for a tag
// sliding rightward in the writing plane, phrased entirely through the
// public API surface (antenna positions from the system itself).
func syntheticSamples(sys *rfidraw.System, planeDist float64, n int) []rfidraw.Sample {
	const c = 299792458.0
	lambda := c / rfidraw.DefaultCarrierHz
	ants := sys.AntennaPositions()
	out := make([]rfidraw.Sample, n)
	for i := 0; i < n; i++ {
		x := 1.0 + 0.004*float64(i)
		z := 1.0
		phases := make(map[int]float64, len(ants))
		for id, a := range ants {
			dx := x - a.X
			dz := z - a.Z
			d := math.Sqrt(dx*dx + dz*dz + planeDist*planeDist)
			// Backscatter: the phase rotates 2π per λ of *round-trip*.
			ph := math.Mod(-2*math.Pi*2*d/lambda, 2*math.Pi)
			if ph < 0 {
				ph += 2 * math.Pi
			}
			phases[id] = ph
		}
		out[i] = rfidraw.Sample{Time: time.Duration(i) * 25 * time.Millisecond, Phases: phases}
	}
	return out
}

// Example shows the minimal end-to-end flow: construct a system for a
// writing plane 2 m from the antenna wall, feed it phase samples, and read
// back the traced trajectory.
func Example() {
	sys, err := rfidraw.New(rfidraw.Config{PlaneDistanceM: 2})
	if err != nil {
		panic(err)
	}
	samples := syntheticSamples(sys, 2, 40)
	res, err := sys.Trace(samples)
	if err != nil {
		panic(err)
	}
	start := res.Trajectory[0]
	end := res.Trajectory[len(res.Trajectory)-1]
	fmt.Printf("start ≈ (%.2f, %.2f), moved right: %v\n", start.X, start.Z, end.X > start.X)
	// Output:
	// start ≈ (1.00, 1.00), moved right: true
}

// ExampleSystem_Localize runs one-shot positioning on a single sample.
func ExampleSystem_Localize() {
	sys, err := rfidraw.New(rfidraw.Config{PlaneDistanceM: 2})
	if err != nil {
		panic(err)
	}
	sample := syntheticSamples(sys, 2, 1)[0]
	cands, err := sys.Localize(sample)
	if err != nil {
		panic(err)
	}
	best := cands[0]
	fmt.Printf("best candidate ≈ (%.2f, %.2f), perfect score: %v\n",
		best.Pos.X, best.Pos.Z, best.Score > -0.001)
	// Output:
	// best candidate ≈ (1.00, 1.00), perfect score: true
}

// ExampleSystem_AntennaPositions prints the deployment for installation.
func ExampleSystem_AntennaPositions() {
	sys, err := rfidraw.New(rfidraw.Config{PlaneDistanceM: 2})
	if err != nil {
		panic(err)
	}
	ants := sys.AntennaPositions()
	fmt.Printf("antennas: %d; antenna 1 at (%.1f, %.1f)\n", len(ants), ants[1].X, ants[1].Z)
	// Output:
	// antennas: 8; antenna 1 at (0.0, 0.0)
}
