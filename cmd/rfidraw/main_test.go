package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 4, 2, 1, []string{"fig2"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "beam") {
		t.Fatalf("fig2 report content: %q", string(data)[:60])
	}
	// Unselected figures must not be produced.
	if _, err := os.Stat(filepath.Join(dir, "fig3.txt")); !os.IsNotExist(err) {
		t.Fatal("fig3 should not have been generated")
	}
}

func TestRunBatchFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("batch run is slow")
	}
	dir := t.TempDir()
	if err := run(dir, 4, 2, 1, []string{"fig11", "fig14"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig11_los.txt", "fig11_nlos.txt", "fig11_los.csv", "fig14.txt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
	// CSV has a header and data rows.
	data, err := os.ReadFile(filepath.Join(dir, "fig11_los.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 10 || !strings.HasPrefix(lines[0], "rf_err_cm") {
		t.Fatalf("csv malformed: %d lines", len(lines))
	}
}

func TestRunRejectsBadOutputDir(t *testing.T) {
	if err := run("/proc/definitely/not/writable", 1, 1, 1, []string{"fig2"}); err == nil {
		t.Fatal("unwritable output dir should error")
	}
}
