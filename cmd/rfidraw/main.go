// Command rfidraw regenerates the paper's evaluation figures against the
// simulated testbed and writes text reports plus CSV data series.
//
// Usage:
//
//	rfidraw -out results [-words 150] [-users 5] [-seed 1] [fig...]
//
// With no figure arguments it runs everything (fig2 fig3 fig4 fig6 fig7
// fig10 fig11 fig12 fig13 fig14 fig15 fig16). Figures 11–15 share two word
// batches (LOS and NLOS), run once.
//
// The replay subcommand re-traces sessions recorded by rfidrawd
// -data-dir offline (see runReplay):
//
//	rfidraw replay -data-dir DIR -session ID [-dist 2] [-dense]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rfidraw/internal/experiments"
	"rfidraw/internal/plot"
	"rfidraw/internal/sim"
	"rfidraw/internal/stats"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "replay" {
		if err := runReplay(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "rfidraw:", err)
			os.Exit(1)
		}
		return
	}
	var (
		outDir = flag.String("out", "results", "output directory")
		words  = flag.Int("words", 60, "words per batch (paper: 150)")
		users  = flag.Int("users", 5, "user styles per batch")
		seed   = flag.Int64("seed", 1, "experiment seed")
	)
	flag.Parse()
	if err := run(*outDir, *words, *users, *seed, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "rfidraw:", err)
		os.Exit(1)
	}
}

func run(outDir string, words, users int, seed int64, figs []string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	want := map[string]bool{}
	for _, f := range figs {
		want[strings.ToLower(f)] = true
	}
	all := len(want) == 0
	sel := func(name string) bool { return all || want[name] }

	report := func(name, text string) error {
		path := filepath.Join(outDir, name+".txt")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			return err
		}
		fmt.Printf("── %s ──\n%s\n", name, text)
		return nil
	}

	if sel("fig2") {
		r, err := experiments.RunFig2()
		if err != nil {
			return fmt.Errorf("fig2: %w", err)
		}
		if err := report("fig2", r.Render()); err != nil {
			return err
		}
	}
	if sel("fig3") {
		r, err := experiments.RunFig3()
		if err != nil {
			return fmt.Errorf("fig3: %w", err)
		}
		if err := report("fig3", r.Render()); err != nil {
			return err
		}
	}
	if sel("fig4") {
		r, err := experiments.RunFig4()
		if err != nil {
			return fmt.Errorf("fig4: %w", err)
		}
		if err := report("fig4", r.Render()); err != nil {
			return err
		}
	}
	if sel("fig6") {
		r, err := experiments.RunFig6()
		if err != nil {
			return fmt.Errorf("fig6: %w", err)
		}
		if err := report("fig6", r.Render()); err != nil {
			return err
		}
	}
	if sel("fig7") {
		r, err := experiments.RunFig7()
		if err != nil {
			return fmt.Errorf("fig7: %w", err)
		}
		if err := report("fig7", r.Render()); err != nil {
			return err
		}
	}
	if sel("fig10") {
		r, err := experiments.RunFig10(seed)
		if err != nil {
			return fmt.Errorf("fig10: %w", err)
		}
		if err := report("fig10", r.Render()); err != nil {
			return err
		}
		if err := writeVoteCSV(filepath.Join(outDir, "fig10_votes.csv"), r.VoteSeries); err != nil {
			return err
		}
	}

	needBatch := sel("fig11") || sel("fig12") || sel("fig13") || sel("fig14") || sel("fig15")
	if needBatch {
		for _, prop := range []sim.Propagation{sim.LOS, sim.NLOS} {
			start := time.Now()
			batch, err := experiments.RunBatch(experiments.BatchConfig{
				Prop: prop, Words: words, Users: users, Seed: seed,
			})
			if err != nil {
				return fmt.Errorf("batch %v: %w", prop, err)
			}
			fmt.Printf("batch %v: %d words in %v\n", prop, len(batch.Outcomes), time.Since(start).Round(time.Millisecond))
			tag := strings.ToLower(prop.String())
			if sel("fig11") {
				r := experiments.RunFig11(batch)
				if err := report("fig11_"+tag, r.Render()); err != nil {
					return err
				}
				if err := writeCDFCSV(filepath.Join(outDir, "fig11_"+tag+".csv"), r); err != nil {
					return err
				}
			}
			if sel("fig12") {
				r := experiments.RunFig12(batch)
				if err := report("fig12_"+tag, r.Render()); err != nil {
					return err
				}
				if err := writeCDFCSV(filepath.Join(outDir, "fig12_"+tag+".csv"), r); err != nil {
					return err
				}
			}
			if prop == sim.LOS {
				if sel("fig13") {
					if err := report("fig13", experiments.RunFig13(batch).Render()); err != nil {
						return err
					}
				}
				if sel("fig14") {
					if err := report("fig14", experiments.RunFig14(batch).Render()); err != nil {
						return err
					}
				}
				if sel("fig15") {
					if err := report("fig15", experiments.RunFig15(batch).Render()); err != nil {
						return err
					}
				}
			}
		}
	}

	if sel("fig16") {
		r, err := experiments.RunFig16(seed)
		if err != nil {
			return fmt.Errorf("fig16: %w", err)
		}
		if err := report("fig16", r.Render()); err != nil {
			return err
		}
	}
	if sel("ablations") {
		r, err := experiments.RunAblations(9, seed)
		if err != nil {
			return fmt.Errorf("ablations: %w", err)
		}
		if err := report("ablations", r.Render()); err != nil {
			return err
		}
	}
	return nil
}

func writeCDFCSV(path string, r *experiments.CDFReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	headers, rows := r.CDFPoints(64)
	return plot.CSV(f, headers, rows)
}

func writeVoteCSV(path string, series [][]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	n := 0
	for _, s := range series {
		if len(s) > n {
			n = len(s)
		}
	}
	headers := make([]string, len(series)+1)
	headers[0] = "position_index"
	for i := range series {
		headers[i+1] = fmt.Sprintf("candidate_%d_vote", i)
	}
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, len(series)+1)
		row[0] = float64(i)
		for j, s := range series {
			if i < len(s) {
				row[j+1] = s[i]
			} else {
				row[j+1] = stats.Median(s) // pad short series
			}
		}
		rows[i] = row
	}
	return plot.CSV(f, headers, rows)
}
