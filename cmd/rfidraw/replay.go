package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rfidraw/internal/core"
	"rfidraw/internal/deploy"
	"rfidraw/internal/engine"
	"rfidraw/internal/geom"
	"rfidraw/internal/tracing"
	"rfidraw/internal/vote"
	"rfidraw/internal/wal"
)

// runReplay is the "rfidraw replay" subcommand: an offline re-trace of a
// session recorded by rfidrawd -data-dir, without a running daemon —
// the same record-once/re-trace-many path the daemon's retrace endpoint
// serves, pointed straight at the log.
//
// Usage:
//
//	rfidraw replay -data-dir DIR [-session ID] [-dist 2] [-dense] [-out file]
//
// Without -session it lists the store's recorded sessions. -dist must
// match the daemon's deployment (the writing-plane distance is not part
// of the log). -dense re-traces under the exhaustive reference search.
func runReplay(args []string) error {
	fs := flag.NewFlagSet("rfidraw replay", flag.ExitOnError)
	var (
		dataDir = fs.String("data-dir", "", "rfidrawd write-ahead log directory (required)")
		session = fs.String("session", "", "session ID to re-trace (empty: list sessions)")
		dist    = fs.Float64("dist", 2, "writing plane distance in metres (must match the recording daemon)")
		dense   = fs.Bool("dense", false, "re-trace under the dense reference search instead of hierarchical")
		out     = fs.String("out", "", "write the JSON result here (default stdout)")
	)
	fs.Parse(args)
	if *dataDir == "" {
		fs.Usage()
		return fmt.Errorf("replay: -data-dir is required")
	}
	if *dist <= 0 {
		return fmt.Errorf("replay: -dist %v must be positive", *dist)
	}
	store, err := wal.Open(*dataDir, wal.Options{})
	if err != nil {
		return err
	}
	if *session == "" {
		ids, err := store.Sessions()
		if err != nil {
			return err
		}
		for _, id := range ids {
			meta, stats, err := store.Scan(id)
			if err != nil {
				fmt.Printf("%s\tunreadable: %v\n", id, err)
				continue
			}
			fmt.Printf("%s\t%d reports\t%d flushes\tsweep %v\tclean=%v\n",
				id, stats.Reports, stats.Flushes, meta.Sweep, stats.CleanClose)
		}
		return nil
	}

	meta, stats, err := store.Scan(*session)
	if err != nil {
		return err
	}
	search := vote.SearchConfig{}
	if *dense {
		search.Mode = vote.SearchDense
	}
	sys, err := core.NewSystem(nil, core.Config{
		Plane: geom.Plane{Y: *dist}, Region: deploy.DefaultRegion(),
		Vote:  vote.Config{Search: search},
		Trace: tracing.Config{Search: search},
	})
	if err != nil {
		return err
	}
	rp, err := engine.NewReplayer(engine.Config{
		System:        sys,
		SweepInterval: meta.Sweep,
		RecordTrace:   true,
	})
	if err != nil {
		return err
	}
	err = store.Replay(*session, 0, func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecordReport:
			return rp.Offer(rec.Report)
		case wal.RecordFlush, wal.RecordClose:
			rp.Flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	rp.Flush()

	type replayPoint struct {
		T time.Duration `json:"t_ns"`
		X float64       `json:"x"`
		Z float64       `json:"z"`
	}
	type replayTag struct {
		Tag            string        `json:"tag"`
		Chosen         int           `json:"chosen"`
		LeaderSwitches int           `json:"leader_switches"`
		Retirements    int           `json:"retirements"`
		Points         []replayPoint `json:"points"`
		Err            string        `json:"err,omitempty"`
	}
	result := struct {
		Session    string      `json:"session"`
		SweepMS    float64     `json:"sweep_ms"`
		Reports    int         `json:"reports"`
		Flushes    int         `json:"flushes"`
		CleanClose bool        `json:"clean_close"`
		TornBytes  int64       `json:"torn_bytes,omitempty"`
		Dense      bool        `json:"dense,omitempty"`
		Tags       []replayTag `json:"tags"`
	}{
		Session: *session, SweepMS: float64(meta.Sweep) / float64(time.Millisecond),
		Reports: stats.Reports, Flushes: stats.Flushes,
		CleanClose: stats.CleanClose, TornBytes: stats.TornBytes, Dense: *dense,
	}
	for _, res := range rp.Results() {
		tag := replayTag{Tag: res.Tag}
		if res.Err != nil {
			tag.Err = res.Err.Error()
			result.Tags = append(result.Tags, tag)
			continue
		}
		tag.Chosen = res.Result.BestIndex
		tag.LeaderSwitches = res.Result.LeaderSwitches
		tag.Retirements = res.Result.Retirements
		for _, p := range res.Result.Best.Trajectory.Points {
			tag.Points = append(tag.Points, replayPoint{T: p.T, X: p.Pos.X, Z: p.Pos.Z})
		}
		result.Tags = append(result.Tags, tag)
	}
	b, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *out != "" {
		return os.WriteFile(*out, b, 0o644)
	}
	_, err = os.Stdout.Write(b)
	return err
}
