// Command loadgen drives a running rfidrawd with simulated multi-user
// writing sessions and reports end-to-end latency: for every session it
// creates a daemon session, subscribes to its live stream, replays the
// scenario's two reader report streams through the ingest gateway (looping
// until -duration elapses), and measures sample→trace-point latency — the
// wall-clock delay between when a sweep's closing report was sent and when
// its trace point arrived back on the stream.
//
// The JSON result (stdout or -out) carries p50/p90/p99/max latency,
// event counts and per-session outcomes; the process exits non-zero if
// any session failed or was shed, so CI can gate on it. The bench
// workflow runs it as an informational soak next to the BENCH artifact.
//
// Usage:
//
//	loadgen -daemon http://127.0.0.1:8090 -sessions 8 -duration 30s
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rfidraw/internal/corpus"
	"rfidraw/internal/deploy"
	"rfidraw/internal/faultgen"
	"rfidraw/internal/geom"
	"rfidraw/internal/obs"
	"rfidraw/internal/readerwire"
	"rfidraw/internal/rfid"
	"rfidraw/internal/server"
	"rfidraw/internal/sim"
)

func main() {
	var (
		daemon   = flag.String("daemon", "http://127.0.0.1:8090", "rfidrawd HTTP API base URL")
		ingest   = flag.String("ingest", "", "ingest gateway address (default: learned from the daemon)")
		sessions = flag.Int("sessions", 8, "concurrent sessions to run")
		tags     = flag.Int("tags", 2, "simultaneous writers per session")
		word     = flag.String("word", "hi", "word the first writer writes")
		seed     = flag.Int64("seed", 1, "scenario seed")
		pace     = flag.Float64("pace", 1, "replay speed (1 = real time)")
		duration = flag.Duration("duration", 30*time.Second, "how long each session streams (scenario loops)")
		retrace  = flag.Bool("retrace", false, "after streaming, POST /retrace twice per session (daemon needs -data-dir) and gate on determinism")
		overload = flag.Bool("overload", false, "overload mode: creates retry on 429 honoring Retry-After (a 429 without one fails the run), sessions the daemon sheds or parks under pressure count as outcomes instead of failures, and parked sessions are left on the daemon for post-run inspection")
		profile  = flag.String("profile", "", "named adversarial scenario profile ("+strings.Join(corpus.ProfileNames(), ", ")+"); sets seed, geometry, propagation and injected reader faults")
		encoding = flag.String("encoding", "ndjson", "stream wire encoding each session subscribes with: ndjson or binary (decoded events are identical)")
		subs     = flag.Int("subscribers", 0, "extra stream subscribers to attach per session (fan-out load; the latency-measuring subscriber is separate)")
		subsTier = flag.String("tier", "mixed", "trace tier the extra subscribers negotiate: 0, 1, 2 or mixed (round-robin across all three)")
		svCheck  = flag.Float64("server-check-ms", 0, "cross-check the daemon's rfidrawd_report_latency_seconds histogram against the client-observed latency: fail if the server-side interpolated p99 exceeds the client p99 by more than this many ms, or if the histogram gained no observations (0 disables)")
		out      = flag.String("out", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()
	if err := validateFlags(*daemon, *sessions, *tags, *word, *pace, *duration, *encoding, *subs, *subsTier); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: invalid flags:", err)
		flag.Usage()
		os.Exit(2)
	}
	report, err := run(*daemon, *ingest, *sessions, *tags, *word, *seed, *pace, *duration, *retrace, *profile, *overload, *svCheck, *encoding, *subs, *subsTier)
	if report != nil {
		b, _ := json.MarshalIndent(report, "", "  ")
		b = append(b, '\n')
		if *out != "" {
			if werr := os.WriteFile(*out, b, 0o644); werr != nil {
				fmt.Fprintln(os.Stderr, "loadgen:", werr)
				os.Exit(1)
			}
		} else {
			os.Stdout.Write(b)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// validateFlags rejects malformed combinations before dialling anything.
func validateFlags(daemon string, sessions, tags int, word string, pace float64, duration time.Duration, encoding string, subscribers int, tier string) error {
	if !strings.HasPrefix(daemon, "http://") && !strings.HasPrefix(daemon, "https://") {
		return fmt.Errorf("-daemon %q must be an http(s) URL", daemon)
	}
	if sessions < 1 {
		return fmt.Errorf("-sessions %d needs at least one session", sessions)
	}
	if tags < 1 || tags > 12 {
		return fmt.Errorf("-tags %d must be 1–12 (the start-grid limit)", tags)
	}
	if strings.TrimSpace(word) == "" {
		return fmt.Errorf("-word must not be empty")
	}
	if pace <= 0 {
		return fmt.Errorf("-pace %v must be positive (paced replay is what latency means)", pace)
	}
	if duration <= 0 {
		return fmt.Errorf("-duration %v must be positive", duration)
	}
	switch encoding {
	case "", "ndjson", "binary":
	default:
		return fmt.Errorf("-encoding %q must be ndjson or binary", encoding)
	}
	if subscribers < 0 {
		return fmt.Errorf("-subscribers %d must not be negative", subscribers)
	}
	switch tier {
	case "0", "1", "2", "mixed":
	default:
		return fmt.Errorf("-tier %q must be 0, 1, 2 or mixed", tier)
	}
	return nil
}

// extraWords mirrors readerd's multi-writer word cycle.
var extraWords = []string{"go", "hi", "on", "it", "up", "at"}

// loopGap separates scenario repetitions in stream time: long enough for
// the daemon's idle drain and stroke finalization to run between words.
const loopGap = 800 * time.Millisecond

// Report is loadgen's JSON output.
type Report struct {
	Sessions  int     `json:"sessions"`
	Tags      int     `json:"tags_per_session"`
	Pace      float64 `json:"pace"`
	DurationS float64 `json:"duration_s"`
	Profile   string  `json:"profile,omitempty"`
	Encoding  string  `json:"encoding,omitempty"`

	Failed int `json:"failed"`
	Shed   int `json:"shed"`
	// Parked counts sessions the daemon parked under pressure (overload
	// mode); Overload429 the total 429 admission refusals absorbed, and
	// RetryWaitMS the total Retry-After time honored doing so.
	Parked      int     `json:"parked,omitempty"`
	Overload429 int64   `json:"overload_429,omitempty"`
	RetryWaitMS float64 `json:"retry_wait_ms,omitempty"`

	Points int64 `json:"points"`
	Glyphs int64 `json:"glyphs"`
	Drops  int64 `json:"drops"`

	// ExtraSubscribers is -subscribers: stream consumers attached per
	// session beyond the latency-measuring one, negotiating
	// SubscriberTier (-tier; "mixed" round-robins 0/1/2). The tierN_*
	// fields tally those consumers' streams by NEGOTIATED tier —
	// tier0_drops stays 0 when the cheapest tier never loses an event —
	// and Downgrades counts the in-stream adaptive step-down
	// announcements they observed. Always present (not omitempty) so the
	// soak gate can read zeros.
	ExtraSubscribers int    `json:"extra_subscribers"`
	SubscriberTier   string `json:"subscriber_tier,omitempty"`
	Tier0Points      int64  `json:"tier0_points"`
	Tier1Points      int64  `json:"tier1_points"`
	Tier2Points      int64  `json:"tier2_points"`
	Tier0Drops       int64  `json:"tier0_drops"`
	Tier1Drops       int64  `json:"tier1_drops"`
	Tier2Drops       int64  `json:"tier2_drops"`
	Downgrades       int64  `json:"downgrades"`

	// Reports is the total reader reports replayed into the ingest
	// gateway across every session; ReportsPerSec is that volume over the
	// run duration — the dataplane throughput the run actually pushed,
	// reported alongside the latency percentiles so encoding comparisons
	// have a rate to line up against.
	Reports       int64   `json:"reports"`
	ReportsPerSec float64 `json:"reports_per_sec"`

	// LatencyMS is the sample→trace-point latency distribution in
	// milliseconds across every point of every session.
	LatencyMS Percentiles `json:"latency_ms"`

	// RetraceMS summarizes WAL retrace wall latency per session when
	// -retrace is set (two runs each; both must be byte-identical).
	RetraceMS Percentiles `json:"retrace_ms,omitempty"`
	// RetracePoints totals the trajectory points the retraces returned.
	RetracePoints int64 `json:"retrace_points,omitempty"`

	// ServerP99MS is the daemon's own view of the run: the interpolated
	// p99 of the rfidrawd_report_latency_seconds histogram delta across
	// the run, in milliseconds (-server-check-ms). ServerE2ECount is how
	// many end-to-end observations the run added to that histogram.
	ServerP99MS    float64 `json:"server_p99_ms,omitempty"`
	ServerE2ECount uint64  `json:"server_e2e_count,omitempty"`

	SessionResults []SessionResult `json:"session_results"`
}

// Percentiles summarizes a latency sample set in milliseconds.
type Percentiles struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// SessionResult is one session's outcome.
type SessionResult struct {
	ID      string  `json:"id"`
	Points  int64   `json:"points"`
	Glyphs  int64   `json:"glyphs"`
	Drops   int64   `json:"drops"`
	Reports int64   `json:"reports"`
	P50     float64 `json:"p50_ms"`
	P99     float64 `json:"p99_ms"`
	Shed    bool    `json:"shed,omitempty"`
	// Parked marks a session the daemon parked under pressure mid-run;
	// Retried429 counts this session's admission retries (overload mode).
	Parked      bool    `json:"parked,omitempty"`
	Retried429  int     `json:"retried_429,omitempty"`
	RetryWaitMS float64 `json:"retry_wait_ms,omitempty"`
	Err         string  `json:"err,omitempty"`

	// RetraceMS is this session's retrace wall time (first run);
	// RetracePoints the points it returned.
	RetraceMS     float64 `json:"retrace_ms,omitempty"`
	RetracePoints int64   `json:"retrace_points,omitempty"`

	// tierPoints/tierDrops/downgrades tally the extra subscribers'
	// streams by negotiated tier (aggregated into the Report).
	tierPoints [3]int64
	tierDrops  [3]int64
	downgrades int64

	// lats carries the raw samples into the global distribution.
	lats []float64
}

func run(daemon, ingest string, sessions, tags int, word string, seed int64, pace float64, duration time.Duration, retrace bool, profileName string, overload bool, svCheckMS float64, encoding string, subscribers int, tier string) (*Report, error) {
	// One shared scenario, replayed into every session: sessions are
	// isolated by the daemon, so identical content exercises the serving
	// layer without paying scenario generation per session. A -profile
	// swaps in that profile's seed, geometry and propagation, and faults
	// the reader streams before replay — the same named corpus the
	// scenario test gates and the soak script's adversarial phase use.
	simCfg := sim.Config{Seed: seed}
	var prof corpus.Profile
	geometry := ""
	if profileName != "" {
		var err error
		if prof, err = corpus.ProfileByName(profileName); err != nil {
			return nil, err
		}
		spec, err := deploy.GeometryByName(prof.Geometry)
		if err != nil {
			return nil, err
		}
		dep, err := spec.BuildDefault()
		if err != nil {
			return nil, err
		}
		simCfg = sim.Config{Seed: prof.Seed, Deployment: dep, Region: spec.Region()}
		if prof.NLOS {
			simCfg.Prop = sim.NLOS
		}
		geometry = prof.Geometry
	}
	sc, err := sim.New(simCfg)
	if err != nil {
		return nil, err
	}
	texts := make([]string, tags)
	starts := make([]geom.Vec2, tags)
	for i := range texts {
		if i == 0 {
			texts[i] = word
		} else {
			texts[i] = extraWords[(i-1)%len(extraWords)]
		}
		starts[i] = geom.Vec2{X: 0.35 + 0.45*float64(i%4), Z: 0.55 + 0.5*float64(i/4%3)}
	}
	scen, err := sc.RunWords(texts, starts)
	if err != nil {
		return nil, err
	}
	streams := scen.ReportsRF
	skews := make([]time.Duration, len(streams))
	if profileName != "" {
		streams = prof.Plan().ApplyAll(scen.ReportsRF)
		// A clock-offset fault skews the reader's stamps, not its emission
		// schedule; the replay has to send those stamps at true time for
		// the skew to reach the daemon as cross-reader disorder.
		for _, f := range prof.Faults {
			if f.ClockOffset == 0 {
				continue
			}
			for r := range skews {
				if f.Reader == faultgen.AllReaders || f.Reader == r {
					skews[r] += f.ClockOffset
				}
			}
		}
	}
	// Max over every report, not just each stream's last: fault-skewed
	// timestamps are not monotonic.
	var scenDur time.Duration
	for _, reports := range streams {
		for _, rep := range reports {
			if rep.Time > scenDur {
				scenDur = rep.Time
			}
		}
	}
	perTagSweep := scen.SweepInterval * time.Duration(tags)

	ctx, cancel := context.WithTimeout(context.Background(), duration+90*time.Second)
	defer cancel()

	// Snapshot the daemon's end-to-end latency histogram before any load,
	// so the post-run delta isolates this run's observations from whatever
	// the daemon served earlier.
	checkClient := &server.Client{BaseURL: daemon}
	var beforeSnap obs.HistogramSnapshot
	if svCheckMS > 0 {
		txt, err := checkClient.FetchMetrics(ctx)
		if err != nil {
			return nil, fmt.Errorf("server check: %w", err)
		}
		if beforeSnap, err = parseE2EHistogram(txt); err != nil {
			return nil, fmt.Errorf("server check: %w", err)
		}
	}

	results := make([]SessionResult, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if overload {
				// Ramp the creates instead of a thundering herd: the
				// congestion score is rate-driven (the pressure loop needs
				// two 1s samples before any rate exists), so later creates
				// must land after pressure from earlier sessions has had
				// time to register — that is what makes admission refusals
				// observable at all.
				time.Sleep(time.Duration(i) * 400 * time.Millisecond)
			}
			results[i] = runSession(ctx, sessionParams{
				client:      &server.Client{BaseURL: daemon, Ingest: ingest, Encoding: encoding},
				id:          fmt.Sprintf("load-%d", i),
				streams:     streams,
				skews:       skews,
				scenDur:     scenDur,
				perTagSweep: perTagSweep,
				pace:        pace,
				duration:    duration,
				retrace:     retrace,
				geometry:    geometry,
				overload:    overload,
				subscribers: subscribers,
				tier:        tier,
			})
		}(i)
	}
	wg.Wait()

	report := &Report{
		Sessions: sessions, Tags: tags, Pace: pace,
		DurationS:        duration.Seconds(),
		Profile:          profileName,
		Encoding:         encoding,
		ExtraSubscribers: subscribers,
		SessionResults:   results,
	}
	if subscribers > 0 {
		report.SubscriberTier = tier
	}
	var all, retraces []float64
	for _, r := range results {
		report.Points += r.Points
		report.Glyphs += r.Glyphs
		report.Drops += r.Drops
		report.Reports += r.Reports
		report.RetracePoints += r.RetracePoints
		report.Overload429 += int64(r.Retried429)
		report.RetryWaitMS += r.RetryWaitMS
		report.Tier0Points += r.tierPoints[0]
		report.Tier1Points += r.tierPoints[1]
		report.Tier2Points += r.tierPoints[2]
		report.Tier0Drops += r.tierDrops[0]
		report.Tier1Drops += r.tierDrops[1]
		report.Tier2Drops += r.tierDrops[2]
		report.Downgrades += r.downgrades
		if r.RetraceMS > 0 {
			retraces = append(retraces, r.RetraceMS)
		}
		switch {
		case r.Shed:
			report.Shed++
		case r.Parked:
			// A parked session is the pressure loop doing its job: the
			// record survives and is resumable, so whatever the stream
			// teardown looked like from this side is not a failure.
			report.Parked++
		case r.Err != "":
			// Shed sessions are the daemon doing its job under overload,
			// not a failure of the run.
			report.Failed++
		}
		all = append(all, r.lats...)
	}
	report.LatencyMS = percentiles(all)
	report.RetraceMS = percentiles(retraces)
	if duration > 0 {
		report.ReportsPerSec = float64(report.Reports) / duration.Seconds()
	}
	if report.Failed > 0 {
		return report, fmt.Errorf("%d of %d sessions failed", report.Failed, sessions)
	}
	// Cross-check the daemon's own latency accounting against what the
	// client measured. The server's end-to-end histogram covers ingest
	// arrival → trace-point emit, a strict subset of the client's
	// send → receive span, so a server-side p99 above the client's (plus
	// the tolerance) means the stage instrumentation is broken, and a
	// histogram that gained nothing during a run that streamed points
	// means the stamps are not wired through at all.
	if svCheckMS > 0 {
		txt, err := checkClient.FetchMetrics(ctx)
		if err != nil {
			return report, fmt.Errorf("server check: %w", err)
		}
		after, err := parseE2EHistogram(txt)
		if err != nil {
			return report, fmt.Errorf("server check: %w", err)
		}
		diff := diffHistogram(after, beforeSnap)
		report.ServerE2ECount = diff.Count
		report.ServerP99MS = diff.Quantile(0.99) * 1000
		if diff.Count == 0 {
			return report, fmt.Errorf("server check: rfidrawd_report_latency_seconds gained no observations during the run")
		}
		if report.LatencyMS.Count > 0 && report.ServerP99MS > report.LatencyMS.P99+svCheckMS {
			return report, fmt.Errorf("server check: server-side p99 %.1fms exceeds client-observed p99 %.1fms by more than %.1fms",
				report.ServerP99MS, report.LatencyMS.P99, svCheckMS)
		}
	}
	return report, nil
}

// parseE2EHistogram extracts the rfidrawd_report_latency_seconds
// cumulative buckets from a /metrics exposition dump into an
// obs.HistogramSnapshot (Count taken from the +Inf bucket). The bucket
// bounds must be exactly the obs exponential ladder the daemon exports.
func parseE2EHistogram(metrics string) (obs.HistogramSnapshot, error) {
	var snap obs.HistogramSnapshot
	const prefix = `rfidrawd_report_latency_seconds_bucket{le="`
	found := false
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := line[len(prefix):]
		q := strings.Index(rest, `"`)
		if q < 0 {
			return snap, fmt.Errorf("malformed bucket line %q", line)
		}
		le := rest[:q]
		val, err := strconv.ParseUint(strings.TrimSpace(strings.TrimPrefix(rest[q:], `"}`)), 10, 64)
		if err != nil {
			return snap, fmt.Errorf("malformed bucket line %q: %w", line, err)
		}
		found = true
		if le == "+Inf" {
			snap.Count = val
			continue
		}
		idx := -1
		for i := 0; i < obs.NumBuckets; i++ {
			if le == strconv.FormatFloat(obs.BucketBound(i), 'g', -1, 64) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return snap, fmt.Errorf("unexpected bucket bound le=%q", le)
		}
		snap.Buckets[idx] = val
	}
	if !found {
		return snap, fmt.Errorf("no rfidrawd_report_latency_seconds_bucket series in /metrics")
	}
	return snap, nil
}

// diffHistogram subtracts two cumulative snapshots of the same
// histogram, yielding the observations made between them.
func diffHistogram(after, before obs.HistogramSnapshot) obs.HistogramSnapshot {
	d := obs.HistogramSnapshot{
		Count:      after.Count - before.Count,
		SumSeconds: after.SumSeconds - before.SumSeconds,
	}
	for i := range d.Buckets {
		d.Buckets[i] = after.Buckets[i] - before.Buckets[i]
	}
	return d
}

type sessionParams struct {
	client      *server.Client
	id          string
	streams     [][]rfid.Report // per-reader replay streams (faulted under -profile)
	skews       []time.Duration // per-reader clock skew (stamps ahead of send schedule)
	scenDur     time.Duration
	perTagSweep time.Duration
	pace        float64
	duration    time.Duration
	retrace     bool
	geometry    string
	overload    bool
	subscribers int    // extra stream subscribers to attach
	tier        string // their negotiated tier: "0", "1", "2" or "mixed"
}

// createSession opens the daemon session; in overload mode an HTTP 429
// is retried after its mandatory Retry-After hint, so admission
// backpressure shapes the ramp instead of failing it.
func createSession(ctx context.Context, p sessionParams, res *SessionResult) (string, error) {
	spec := server.SessionSpec{ID: p.id, Geometry: p.geometry}
	deadline := time.Now().Add(p.duration)
	for {
		id, err := p.client.CreateSession(ctx, spec)
		if err == nil {
			return id, nil
		}
		if !p.overload || !errors.Is(err, server.ErrOverloaded) {
			return "", err
		}
		res.Retried429++
		var apiErr *server.APIError
		if !errors.As(err, &apiErr) || apiErr.RetryAfter <= 0 {
			return "", fmt.Errorf("429 without a Retry-After hint: %w", err)
		}
		if time.Now().Add(apiErr.RetryAfter).After(deadline) {
			// Past the run budget: the daemon consistently refused this
			// session — that is shedding, not an error.
			res.Shed = true
			return "", err
		}
		res.RetryWaitMS += float64(apiErr.RetryAfter) / float64(time.Millisecond)
		select {
		case <-time.After(apiErr.RetryAfter):
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
}

func runSession(ctx context.Context, p sessionParams) SessionResult {
	res := SessionResult{ID: p.id}
	id, err := createSession(ctx, p, &res)
	if err != nil {
		if errors.Is(err, server.ErrSessionLimit) {
			res.Shed = true
		}
		if !res.Shed {
			res.Err = err.Error()
		}
		return res
	}
	defer func() {
		// A parked session is deliberately left behind in overload mode:
		// the record on the daemon is the artifact the post-run harness
		// resumes and retraces.
		if !res.Parked {
			p.client.DeleteSession(context.Background(), id)
		}
	}()

	events, errs, err := p.client.Subscribe(ctx, id)
	if err != nil {
		res.Err = err.Error()
		return res
	}

	// Fan-out load: -subscribers extra consumers on the same stream, each
	// negotiating its tier (-tier mixed round-robins 0/1/2). Each tallies
	// its own stream — points, drop notices, and the in-stream "tier"
	// downgrade announcements — keyed by the tier it negotiated, so the
	// report can say e.g. "T0 subscribers lost nothing" even after some
	// T2 subscriber was stepped down.
	type extraSummary struct {
		tier                      int
		points, drops, downgrades int64
		err                       error
	}
	extraCh := make(chan extraSummary, p.subscribers)
	for i := 0; i < p.subscribers; i++ {
		tier := p.tier
		if tier == "mixed" {
			tier = strconv.Itoa(i % 3)
		}
		go func(tier string) {
			level, _ := strconv.Atoi(tier)
			sum := extraSummary{tier: level}
			defer func() { extraCh <- sum }()
			ec := &server.Client{BaseURL: p.client.BaseURL, Encoding: p.client.Encoding, Tier: tier}
			evs, serrs, err := ec.Subscribe(ctx, id)
			if err != nil {
				sum.err = err
				return
			}
			for ev := range evs {
				switch ev.Type {
				case "point":
					sum.points++
				case "drop":
					sum.drops += int64(ev.Dropped)
				case "tier":
					if ev.Tier < ev.FromTier {
						sum.downgrades++
					}
				}
			}
			select {
			case err := <-serrs:
				sum.err = err
			default:
			}
		}(tier)
	}

	// The stream consumer: latency for a point at stream time T is
	// recvWall − (start + (T + sweep)/pace) — the sweep term because a
	// sweep's position can only be computed once the next sweep's first
	// report arrives. The consumer owns its tallies; they transfer to res
	// over sumCh when the stream ends.
	start := time.Now()
	type consumeSummary struct {
		points, glyphs, drops int64
		lats                  []float64
	}
	sumCh := make(chan consumeSummary, 1)
	go func() {
		var sum consumeSummary
		defer func() { sumCh <- sum }()
		for ev := range events {
			switch ev.Type {
			case "point":
				sum.points++
				expected := start.Add(time.Duration(float64(ev.T+p.perTagSweep) / p.pace))
				lat := time.Since(expected)
				if lat < 0 {
					lat = 0
				}
				sum.lats = append(sum.lats, float64(lat)/float64(time.Millisecond))
			case "glyph":
				sum.glyphs++
			case "drop":
				sum.drops += int64(ev.Dropped)
			}
		}
	}()

	// One connection per reader loops the scenario until the duration is
	// up (two readers on the default geometry, four on multiroom).
	replayCtx, stopReplay := context.WithDeadline(ctx, start.Add(p.duration))
	var rwg sync.WaitGroup
	var reportsSent atomic.Int64
	errCh := make(chan error, len(p.streams))
	for readerID := range p.streams {
		rwg.Add(1)
		go func(readerID int) {
			defer rwg.Done()
			hello := readerwire.Hello{
				Proto:         readerwire.ProtoVersion,
				ReaderID:      uint8(readerID),
				AntennaCount:  4,
				SweepInterval: p.perTagSweep,
			}
			rs, err := p.client.DialIngest(id, hello)
			if err != nil {
				errCh <- err
				return
			}
			defer rs.Close()
			defer func() { reportsSent.Add(rs.Sent()) }()
			for loop := 0; replayCtx.Err() == nil; loop++ {
				offset := time.Duration(loop) * (p.scenDur + loopGap)
				err := rs.ReplaySkewed(replayCtx, p.streams[readerID], p.pace, offset, start, p.skews[readerID])
				if err != nil {
					if replayCtx.Err() == nil {
						errCh <- err
					}
					return
				}
			}
		}(readerID)
	}
	rwg.Wait()
	stopReplay()
	res.Reports = reportsSent.Load()
	select {
	case err := <-errCh:
		res.Err = err.Error()
	default:
	}

	// Let the daemon's idle drain flush the tail, then tear down; the
	// delete ends the stream, which ends the consumer.
	time.Sleep(400 * time.Millisecond)

	// Under overload the pressure loop may have parked this session
	// mid-replay (its ingest connections die and the stream ends early).
	// That is the admission layer's designed relief valve, so learn the
	// session's fate from the control plane before judging errors.
	if p.overload {
		if state, err := p.client.Control(ctx); err == nil {
			for _, cs := range state.Sessions {
				if cs.ID == id && cs.State == "recovered" {
					res.Parked = true
					res.Err = ""
					break
				}
			}
		}
	}

	// Replay-mode traffic: re-trace the recorded session from its WAL,
	// twice, and gate on byte-identical responses — the serving-side
	// proof that a retrace is a pure function of the record. Runs after
	// the drain settle so the log is quiescent; if a straggling report
	// still lands between the runs the heads differ and the byte gate
	// does not apply (each run is only a function of ITS record prefix).
	if p.retrace && !res.Parked {
		t0 := time.Now()
		sum, raw1, err := p.client.Retrace(ctx, id, "")
		if err != nil {
			res.Err = "retrace: " + err.Error()
		} else {
			res.RetraceMS = float64(time.Since(t0)) / float64(time.Millisecond)
			for _, tag := range sum.Tags {
				res.RetracePoints += int64(len(tag.Points))
			}
			if res.RetracePoints == 0 {
				res.Err = "retrace returned no points"
			}
			if sum2, raw2, err := p.client.Retrace(ctx, id, ""); err != nil {
				res.Err = "retrace (2nd): " + err.Error()
			} else if sum2.Records == sum.Records && !bytes.Equal(raw1, raw2) {
				res.Err = "retrace is nondeterministic: two runs over the same record differ"
			}
		}
	}
	if !res.Parked {
		if err := p.client.DeleteSession(context.Background(), id); err != nil && res.Err == "" {
			res.Err = err.Error()
		}
	}
	select {
	case sum := <-sumCh:
		res.Points, res.Glyphs, res.Drops = sum.points, sum.glyphs, sum.drops
		res.lats = sum.lats
	case <-time.After(10 * time.Second):
		if res.Err == "" {
			res.Err = "stream did not end after session delete"
		}
	}
	for i := 0; i < p.subscribers; i++ {
		select {
		case sum := <-extraCh:
			res.tierPoints[sum.tier] += sum.points
			res.tierDrops[sum.tier] += sum.drops
			res.downgrades += sum.downgrades
			if sum.err != nil && res.Err == "" && !res.Parked {
				res.Err = fmt.Sprintf("tier-%d subscriber: %v", sum.tier, sum.err)
			}
		case <-time.After(10 * time.Second):
			if res.Err == "" {
				res.Err = "extra subscriber stream did not end after session delete"
			}
		}
	}
	select {
	case err := <-errs:
		if res.Err == "" && !res.Parked {
			res.Err = err.Error()
		}
	default:
	}
	if res.Points == 0 && res.Err == "" && !res.Parked {
		res.Err = "session produced no points"
	}
	pct := percentiles(res.lats)
	res.P50, res.P99 = pct.P50, pct.P99
	return res
}

// percentiles computes the latency summary of a millisecond sample set.
func percentiles(ms []float64) Percentiles {
	if len(ms) == 0 {
		return Percentiles{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		idx := int(math.Ceil(q*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return sorted[idx]
	}
	return Percentiles{
		Count: len(sorted),
		P50:   at(0.50),
		P90:   at(0.90),
		P99:   at(0.99),
		Max:   sorted[len(sorted)-1],
	}
}
