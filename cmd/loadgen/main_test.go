package main

import (
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	for _, enc := range []string{"", "ndjson", "binary"} {
		if err := validateFlags("http://127.0.0.1:8090", 8, 2, "hi", 1, 30*time.Second, enc, 0, "mixed"); err != nil {
			t.Fatalf("valid flags (encoding %q) rejected: %v", enc, err)
		}
	}
	for _, tier := range []string{"0", "1", "2", "mixed"} {
		if err := validateFlags("http://127.0.0.1:8090", 8, 2, "hi", 1, 30*time.Second, "ndjson", 64, tier); err != nil {
			t.Fatalf("valid flags (tier %q) rejected: %v", tier, err)
		}
	}
	cases := []struct {
		name        string
		daemon      string
		sessions    int
		tags        int
		word        string
		pace        float64
		duration    time.Duration
		encoding    string
		subscribers int
		tier        string
	}{
		{"bad url", "127.0.0.1:8090", 8, 2, "hi", 1, time.Second, "ndjson", 0, "mixed"},
		{"zero sessions", "http://x", 0, 2, "hi", 1, time.Second, "ndjson", 0, "mixed"},
		{"zero tags", "http://x", 8, 0, "hi", 1, time.Second, "ndjson", 0, "mixed"},
		{"too many tags", "http://x", 8, 13, "hi", 1, time.Second, "ndjson", 0, "mixed"},
		{"empty word", "http://x", 8, 2, "  ", 1, time.Second, "ndjson", 0, "mixed"},
		{"zero pace", "http://x", 8, 2, "hi", 0, time.Second, "ndjson", 0, "mixed"},
		{"zero duration", "http://x", 8, 2, "hi", 1, 0, "ndjson", 0, "mixed"},
		{"bad encoding", "http://x", 8, 2, "hi", 1, time.Second, "protobuf", 0, "mixed"},
		{"negative subscribers", "http://x", 8, 2, "hi", 1, time.Second, "ndjson", -1, "mixed"},
		{"bad tier", "http://x", 8, 2, "hi", 1, time.Second, "ndjson", 4, "3"},
	}
	for _, tc := range cases {
		if err := validateFlags(tc.daemon, tc.sessions, tc.tags, tc.word, tc.pace, tc.duration, tc.encoding, tc.subscribers, tc.tier); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestPercentiles(t *testing.T) {
	p := percentiles(nil)
	if p.Count != 0 || p.P50 != 0 {
		t.Fatalf("empty percentiles = %+v", p)
	}
	ms := make([]float64, 100)
	for i := range ms {
		ms[i] = float64(100 - i) // reversed: 100..1
	}
	p = percentiles(ms)
	if p.Count != 100 || p.P50 != 50 || p.P90 != 90 || p.P99 != 99 || p.Max != 100 {
		t.Fatalf("percentiles = %+v", p)
	}
}
