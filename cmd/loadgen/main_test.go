package main

import (
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	for _, enc := range []string{"", "ndjson", "binary"} {
		if err := validateFlags("http://127.0.0.1:8090", 8, 2, "hi", 1, 30*time.Second, enc); err != nil {
			t.Fatalf("valid flags (encoding %q) rejected: %v", enc, err)
		}
	}
	cases := []struct {
		name     string
		daemon   string
		sessions int
		tags     int
		word     string
		pace     float64
		duration time.Duration
		encoding string
	}{
		{"bad url", "127.0.0.1:8090", 8, 2, "hi", 1, time.Second, "ndjson"},
		{"zero sessions", "http://x", 0, 2, "hi", 1, time.Second, "ndjson"},
		{"zero tags", "http://x", 8, 0, "hi", 1, time.Second, "ndjson"},
		{"too many tags", "http://x", 8, 13, "hi", 1, time.Second, "ndjson"},
		{"empty word", "http://x", 8, 2, "  ", 1, time.Second, "ndjson"},
		{"zero pace", "http://x", 8, 2, "hi", 0, time.Second, "ndjson"},
		{"zero duration", "http://x", 8, 2, "hi", 1, 0, "ndjson"},
		{"bad encoding", "http://x", 8, 2, "hi", 1, time.Second, "protobuf"},
	}
	for _, tc := range cases {
		if err := validateFlags(tc.daemon, tc.sessions, tc.tags, tc.word, tc.pace, tc.duration, tc.encoding); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestPercentiles(t *testing.T) {
	p := percentiles(nil)
	if p.Count != 0 || p.P50 != 0 {
		t.Fatalf("empty percentiles = %+v", p)
	}
	ms := make([]float64, 100)
	for i := range ms {
		ms[i] = float64(100 - i) // reversed: 100..1
	}
	p = percentiles(ms)
	if p.Count != 100 || p.P50 != 50 || p.P90 != 90 || p.P99 != 99 || p.Max != 100 {
		t.Fatalf("percentiles = %+v", p)
	}
}
