package main

import "testing"

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		readers string
		dist    float64
		shards  int
		wantN   int
		wantErr bool
	}{
		{"defaults", "127.0.0.1:7011,127.0.0.1:7012", 2, 0, 2, false},
		{"spaces trimmed", " a:1 , b:2 ", 2, 4, 2, false},
		{"empty readers", "", 2, 0, 0, true},
		{"only commas", ",,,", 2, 0, 0, true},
		{"zero dist", "a:1", 0, 0, 0, true},
		{"negative dist", "a:1", -3, 0, 0, true},
		{"negative shards", "a:1", 2, -1, 0, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			addrs, err := validateFlags(c.readers, c.dist, c.shards)
			if (err != nil) != c.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, c.wantErr)
			}
			if err == nil && len(addrs) != c.wantN {
				t.Fatalf("got %d addresses %v, want %d", len(addrs), addrs, c.wantN)
			}
		})
	}
}
