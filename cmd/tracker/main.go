// Command tracker connects to two readerd daemons, merges their phase
// report streams, and traces the tag's trajectory live, printing each
// position as it is estimated — the host side of the virtual touch screen.
//
// Usage:
//
//	tracker -readers 127.0.0.1:7011,127.0.0.1:7012 -dist 2
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"rfidraw/internal/core"
	"rfidraw/internal/deploy"
	"rfidraw/internal/geom"
	"rfidraw/internal/readerwire"
	"rfidraw/internal/realtime"
	"rfidraw/internal/rfid"
)

func main() {
	var (
		readers = flag.String("readers", "127.0.0.1:7011,127.0.0.1:7012", "comma-separated readerd addresses")
		dist    = flag.Float64("dist", 2, "writing plane distance in metres")
	)
	flag.Parse()
	if err := run(strings.Split(*readers, ","), *dist); err != nil {
		fmt.Fprintln(os.Stderr, "tracker:", err)
		os.Exit(1)
	}
}

func run(addrs []string, dist float64) error {
	sys, err := core.NewSystem(nil, core.Config{
		Plane:  geom.Plane{Y: dist},
		Region: deploy.DefaultRegion(),
	})
	if err != nil {
		return err
	}

	type streamResult struct {
		hello   readerwire.Hello
		reports []rfid.Report
		err     error
	}
	results := make(chan streamResult, len(addrs))
	for _, addr := range addrs {
		go func(addr string) {
			conn, err := net.DialTimeout("tcp", strings.TrimSpace(addr), 5*time.Second)
			if err != nil {
				results <- streamResult{err: fmt.Errorf("dial %s: %w", addr, err)}
				return
			}
			defer conn.Close()
			hello, reports, err := readerwire.Collect(conn)
			results <- streamResult{hello: hello, reports: reports, err: err}
		}(addr)
	}
	var streams [][]rfid.Report
	var sweep time.Duration
	for range addrs {
		r := <-results
		if r.err != nil {
			return r.err
		}
		fmt.Printf("tracker: reader %d delivered %d reports\n", r.hello.ReaderID, len(r.reports))
		streams = append(streams, r.reports)
		sweep = r.hello.SweepInterval
	}

	tr, err := realtime.NewTracker(realtime.Config{System: sys, SweepInterval: sweep})
	if err != nil {
		return err
	}
	merged := realtime.MergeStreams(streams...)
	count := 0
	emit := func(ps []realtime.Position) {
		for _, p := range ps {
			fmt.Printf("t=%8v  x=%7.3f m  z=%7.3f m\n", p.Time.Round(time.Millisecond), p.Pos.X, p.Pos.Z)
			count++
		}
	}
	for _, rep := range merged {
		ps, err := tr.Offer(rep)
		if err != nil {
			return err
		}
		emit(ps)
	}
	ps, err := tr.Flush()
	if err != nil {
		return err
	}
	emit(ps)
	fmt.Printf("tracker: %d positions, mean vote %.4f\n", count, tr.MeanVote())
	return nil
}
