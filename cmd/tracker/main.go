// Command tracker connects to readerd daemons, merges their phase report
// streams, and traces every tag live and concurrently, printing each
// position as it is estimated — the host side of the virtual touch
// screen. Reports are demultiplexed by EPC and fanned out across the
// engine's worker shards, so many simultaneous writers cost roughly one
// core each.
//
// Usage:
//
//	tracker -readers 127.0.0.1:7011,127.0.0.1:7012 -dist 2 -shards 4
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"rfidraw/internal/core"
	"rfidraw/internal/deploy"
	"rfidraw/internal/engine"
	"rfidraw/internal/geom"
	"rfidraw/internal/readerwire"
	"rfidraw/internal/realtime"
	"rfidraw/internal/rfid"
)

func main() {
	var (
		readers = flag.String("readers", "127.0.0.1:7011,127.0.0.1:7012", "comma-separated readerd addresses")
		dist    = flag.Float64("dist", 2, "writing plane distance in metres")
		shards  = flag.Int("shards", 0, "engine worker shards (0 = one per CPU)")
	)
	flag.Parse()
	addrs, err := validateFlags(*readers, *dist, *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracker: invalid flags:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(addrs, *dist, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "tracker:", err)
		os.Exit(1)
	}
}

// validateFlags rejects malformed flag combinations before any reader is
// dialled, returning the cleaned address list.
func validateFlags(readers string, dist float64, shards int) ([]string, error) {
	var addrs []string
	for _, a := range strings.Split(readers, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		addrs = append(addrs, a)
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("-readers %q names no reader address", readers)
	}
	if dist <= 0 {
		return nil, fmt.Errorf("-dist %v must be a positive distance in metres", dist)
	}
	if shards < 0 {
		return nil, fmt.Errorf("-shards %d must be ≥ 0 (0 = one per CPU)", shards)
	}
	return addrs, nil
}

func run(addrs []string, dist float64, shards int) error {
	type streamResult struct {
		hello   readerwire.Hello
		reports []rfid.Report
		err     error
	}
	results := make(chan streamResult, len(addrs))
	for _, addr := range addrs {
		go func(addr string) {
			conn, err := net.DialTimeout("tcp", strings.TrimSpace(addr), 5*time.Second)
			if err != nil {
				results <- streamResult{err: fmt.Errorf("dial %s: %w", addr, err)}
				return
			}
			defer conn.Close()
			hello, reports, err := readerwire.Collect(conn)
			results <- streamResult{hello: hello, reports: reports, err: err}
		}(addr)
	}
	var streams [][]rfid.Report
	var sweep time.Duration
	for range addrs {
		r := <-results
		if r.err != nil {
			return r.err
		}
		fmt.Printf("tracker: reader %d delivered %d reports\n", r.hello.ReaderID, len(r.reports))
		streams = append(streams, r.reports)
		sweep = r.hello.SweepInterval
	}

	// The Hello announces the per-tag sweep cadence (airtime already
	// divided by the tag count), which is exactly the engine's notion of
	// sweep interval.
	var mu sync.Mutex
	count := 0
	eng, err := engine.New(engine.Config{
		Shards: shards,
		Core:   core.Config{Plane: geom.Plane{Y: dist}, Region: deploy.DefaultRegion()},
		// SweepInterval is per tag; see readerd's Hello.
		SweepInterval: sweep,
		OnUpdate: func(u Update) {
			mu.Lock()
			defer mu.Unlock()
			for _, p := range u.Positions {
				fmt.Printf("tag %s  t=%8v  x=%7.3f m  z=%7.3f m\n",
					u.Tag[:8], p.Time.Round(time.Millisecond), p.Pos.X, p.Pos.Z)
				count++
			}
		},
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	merged := realtime.MergeStreams(streams...)
	if err := eng.OfferAll(merged); err != nil {
		return err
	}
	if err := eng.Flush(); err != nil {
		return err
	}
	stats := eng.Stats()
	for _, st := range stats {
		status := "tracked"
		if st.Err != nil {
			status = "failed: " + st.Err.Error()
		} else if !st.Started {
			status = "never acquired"
		}
		fmt.Printf("tracker: tag %s  %d positions, mean vote %.4f, %d reacquisitions, "+
			"%d hypotheses live (%d retired, %d leader switches) — %s\n",
			st.Tag[:8], st.Positions, st.MeanVote, st.Reacquisitions,
			st.Hypotheses, st.Retirements, st.LeaderSwitches, status)
	}
	fmt.Printf("tracker: %d positions across %d tags on %d shards\n",
		count, len(stats), eng.Shards())
	return nil
}

// Update aliases the engine's update type for the callback signature.
type Update = engine.Update
