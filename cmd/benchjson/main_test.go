package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: rfidraw
cpu: Test CPU
BenchmarkEngineMultiTag/tags=8/shards=1-8         	       3	 120000000 ns/op	        66.67 tag-traces/s
BenchmarkEngineMultiTag/tags=8/shards=1-8         	       3	 110000000 ns/op	        72.73 tag-traces/s
BenchmarkEngineMultiTag/tags=8/shards=1-8         	       3	 130000000 ns/op	        61.54 tag-traces/s
BenchmarkLocalizeSingleSample-8                   	     100	   9000000 ns/op	     512 B/op	       4 allocs/op
PASS
ok  	rfidraw	12.345s
`

func TestParseCollapsesRepetitionsToBest(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput), "2026-07-28")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(f.Benchmarks))
	}
	multi := f.Benchmarks[0]
	if multi.Name != "BenchmarkEngineMultiTag/tags=8/shards=1" {
		t.Fatalf("name = %q (procs suffix should be stripped)", multi.Name)
	}
	if multi.NsPerOp != 110000000 {
		t.Fatalf("ns/op = %v, want the best repetition 1.1e8", multi.NsPerOp)
	}
	if got := multi.Metrics["tag-traces/s"]; got != 72.73 {
		t.Fatalf("custom metric = %v, want the best repetition's 72.73", got)
	}
	loc := f.Benchmarks[1]
	if loc.BytesPerOp != 512 || loc.AllocsPerOp == nil || *loc.AllocsPerOp != 4 {
		t.Fatalf("benchmem fields = %v B/op, %v allocs/op", loc.BytesPerOp, loc.AllocsPerOp)
	}
	if f.Benchmarks[0].AllocsPerOp != nil {
		t.Fatal("benchmark without allocation data must record nil, not 0")
	}
	if f.Schema != 1 || f.Date != "2026-07-28" {
		t.Fatalf("file header: %+v", f)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX-8  3  nope ns/op\n"), "d"); err == nil {
		t.Fatal("want error for unparsable value")
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":            "BenchmarkFoo",
		"BenchmarkFoo/tags=8-64":    "BenchmarkFoo/tags=8",
		"BenchmarkFoo/shards=1":     "BenchmarkFoo/shards=1",
		"BenchmarkFoo/tags=8/x-128": "BenchmarkFoo/tags=8/x",
	} {
		if got := NormalizeName(in); got != want {
			t.Errorf("NormalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func mkFile(ns float64) *File {
	return &File{
		Schema: 1, Date: "2026-07-28", Go: "go1.24.0",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkEngineMultiTag/tags=8/shards=1", N: 3, NsPerOp: ns},
			{Name: "BenchmarkOther", N: 10, NsPerOp: 50},
		},
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	report, failed := Compare(mkFile(100), mkFile(115), "EngineMultiTag/tags=8", 0.20, 0, "", 0)
	if failed {
		t.Fatalf("15%% should pass a 20%% gate:\n%s", report)
	}
	if !strings.Contains(report, "ok") || !strings.Contains(report, "+15.0%") {
		t.Fatalf("report missing comparison:\n%s", report)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	report, failed := Compare(mkFile(100), mkFile(130), "EngineMultiTag/tags=8", 0.20, 0, "", 0)
	if !failed {
		t.Fatalf("30%% regression should fail a 20%% gate:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSED") {
		t.Fatalf("report missing REGRESSED marker:\n%s", report)
	}
}

func TestCompareGatesOnlyMatchingBenchmarks(t *testing.T) {
	cur := mkFile(100)
	cur.Benchmarks[1].NsPerOp = 500 // 10x regression on the unmatched one
	if report, failed := Compare(mkFile(100), cur, "EngineMultiTag/tags=8", 0.20, 0, "", 0); failed {
		t.Fatalf("unmatched benchmark must not fail the gate:\n%s", report)
	}
	if _, failed := Compare(mkFile(100), cur, "", 0.20, 0, "", 0); !failed {
		t.Fatal("empty match should gate every benchmark")
	}
}

func TestCompareNoOverlapWarnsButPasses(t *testing.T) {
	other := &File{Benchmarks: []Benchmark{{Name: "BenchmarkElsewhere", NsPerOp: 1}}}
	report, failed := Compare(mkFile(100), other, "EngineMultiTag", 0.20, 0, "", 0)
	if failed {
		t.Fatalf("no overlap should not fail:\n%s", report)
	}
	if !strings.Contains(report, "WARNING") {
		t.Fatalf("report missing no-overlap warning:\n%s", report)
	}
}

func mkAllocFile(ns float64, allocs ...float64) *File {
	b := Benchmark{Name: "BenchmarkEngineStreaming/shards=1", N: 3, NsPerOp: ns}
	if len(allocs) > 0 {
		b.AllocsPerOp = &allocs[0]
	}
	return &File{
		Schema: 1, Date: "2026-07-28", Go: "go1.24.0", CPU: "Same CPU",
		Benchmarks: []Benchmark{b},
	}
}

func TestCompareAllocsGate(t *testing.T) {
	// 10% allocation growth passes a 20% gate; 50% fails it even when
	// ns/op is fine.
	if report, failed := Compare(mkAllocFile(100, 1000), mkAllocFile(100, 1100), "EngineStreaming", -1, 0.20, "", 0); failed {
		t.Fatalf("10%% allocs growth should pass a 20%% gate:\n%s", report)
	}
	report, failed := Compare(mkAllocFile(100, 1000), mkAllocFile(100, 1500), "EngineStreaming", -1, 0.20, "", 0)
	if !failed {
		t.Fatalf("50%% allocs growth should fail a 20%% gate:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSED") || !strings.Contains(report, "allocs 1000 -> 1500") {
		t.Fatalf("report missing allocation regression detail:\n%s", report)
	}
	// A disabled time gate must not fail on ns/op regressions.
	if report, failed := Compare(mkAllocFile(100, 1000), mkAllocFile(1000, 1000), "EngineStreaming", -1, 0.20, "", 0); failed {
		t.Fatalf("disabled ns/op gate must not fail:\n%s", report)
	}
	// The allocation gate has no cross-CPU escape: allocs are a property
	// of the code.
	cur := mkAllocFile(100, 1500)
	cur.CPU = "Other CPU"
	if _, failed := Compare(mkAllocFile(100, 1000), cur, "EngineStreaming", -1, 0.20, "", 0); !failed {
		t.Fatal("cross-CPU allocation regression must still fail")
	}
}

func TestCompareAllocsGateMissingDataIsInformational(t *testing.T) {
	baseline := mkAllocFile(100) // recorded before ReportAllocs existed
	report, failed := Compare(baseline, mkAllocFile(100, 900), "EngineStreaming", -1, 0.20, "", 0)
	if failed {
		t.Fatalf("missing baseline allocation data must not fail:\n%s", report)
	}
	if !strings.Contains(report, "no gate: missing data") {
		t.Fatalf("report missing the no-data note:\n%s", report)
	}
	// Gate off entirely: no allocation text at all.
	report, _ = Compare(mkAllocFile(100, 1000), mkAllocFile(100, 1500), "EngineStreaming", -1, 0, "", 0)
	if strings.Contains(report, "allocs 1000") {
		t.Fatalf("disabled allocs gate should not report allocations:\n%s", report)
	}
}

func TestCompareAllocsGateZeroBaselineIsReal(t *testing.T) {
	// A genuinely allocation-free baseline is data, not absence: any
	// growth from 0 is an unbounded regression and must fail the gate.
	report, failed := Compare(mkAllocFile(100, 0), mkAllocFile(100, 20000), "EngineStreaming", -1, 0.20, "", 0)
	if !failed {
		t.Fatalf("0 -> 20000 allocs/op must fail the gate:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSED") {
		t.Fatalf("report missing REGRESSED marker:\n%s", report)
	}
	if _, failed := Compare(mkAllocFile(100, 0), mkAllocFile(100, 0), "EngineStreaming", -1, 0.20, "", 0); failed {
		t.Fatal("0 -> 0 allocs/op must pass")
	}
}

func mkMetricFile(ns float64, metrics map[string]float64) *File {
	return &File{
		Schema: 1, Date: "2026-08-08", Go: "go1.24.0", CPU: "Same CPU",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkIngestToEmit/encoding=binary/subs=512", N: 3, NsPerOp: ns, Metrics: metrics},
		},
	}
}

func TestCompareMetricGate(t *testing.T) {
	base := mkMetricFile(100, map[string]float64{"reports/s": 10000})
	// A 10% throughput drop passes a 25% gate.
	if report, failed := Compare(base, mkMetricFile(100, map[string]float64{"reports/s": 9000}), "IngestToEmit", -1, 0, "reports/s", 0.25); failed {
		t.Fatalf("10%% throughput drop should pass a 25%% gate:\n%s", report)
	}
	// A 50% drop fails it — lower is the regression direction.
	report, failed := Compare(base, mkMetricFile(100, map[string]float64{"reports/s": 5000}), "IngestToEmit", -1, 0, "reports/s", 0.25)
	if !failed {
		t.Fatalf("50%% throughput drop should fail a 25%% gate:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSED") || !strings.Contains(report, "reports/s 10000 -> 5000") {
		t.Fatalf("report missing throughput regression detail:\n%s", report)
	}
	// A throughput GAIN must never fail, however large.
	if report, failed := Compare(base, mkMetricFile(100, map[string]float64{"reports/s": 40000}), "IngestToEmit", -1, 0, "reports/s", 0.25); failed {
		t.Fatalf("throughput gain must pass:\n%s", report)
	}
	// Missing metric on either side downgrades to informational.
	report, failed = Compare(base, mkMetricFile(100, nil), "IngestToEmit", -1, 0, "reports/s", 0.25)
	if failed {
		t.Fatalf("missing metric data must not fail:\n%s", report)
	}
	if !strings.Contains(report, "no gate: missing data") {
		t.Fatalf("report missing the no-data note:\n%s", report)
	}
	// Cross-CPU throughput, like ns/op, is not comparable: informational.
	cur := mkMetricFile(100, map[string]float64{"reports/s": 5000})
	cur.CPU = "Other CPU"
	if report, failed := Compare(base, cur, "IngestToEmit", -1, 0, "reports/s", 0.25); failed {
		t.Fatalf("cross-CPU throughput drop must not fail the gate:\n%s", report)
	}
}

func TestParseRecordsCPU(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput), "d")
	if err != nil {
		t.Fatal(err)
	}
	if f.CPU != "Test CPU" {
		t.Fatalf("cpu = %q, want %q", f.CPU, "Test CPU")
	}
}

func TestCompareDifferentCPUIsInformational(t *testing.T) {
	baseline := mkFile(100)
	baseline.CPU = "Dev Workstation"
	cur := mkFile(200) // 100% slower — would fail on same hardware
	cur.CPU = "CI Runner"
	report, failed := Compare(baseline, cur, "EngineMultiTag/tags=8", 0.20, 0, "", 0)
	if failed {
		t.Fatalf("cross-CPU comparison must not fail the gate:\n%s", report)
	}
	if !strings.Contains(report, "not comparable") || !strings.Contains(report, "slower") {
		t.Fatalf("report missing cross-CPU downgrade:\n%s", report)
	}
	cur.CPU = baseline.CPU
	if _, failed := Compare(baseline, cur, "EngineMultiTag/tags=8", 0.20, 0, "", 0); !failed {
		t.Fatal("same-CPU regression must fail the gate")
	}
}
