// Command benchjson turns `go test -bench` output into the repository's
// BENCH_<date>.json trajectory format and gates benchmark regressions
// against a committed baseline.
//
// Convert (stdin or -in) to JSON (stdout or -out):
//
//	go test -run xxx -bench . -benchtime 3x -count 3 . | benchjson -out BENCH_2026-07-28.json
//
// Compare a fresh run against the committed baseline, failing (exit 1)
// when any matching benchmark's ns/op regressed by more than -max-regress:
//
//	benchjson -compare BENCH_baseline.json -bench 'BenchmarkEngineMultiTag/tags=8' -max-regress 0.20 BENCH_2026-07-28.json
//
// Gate a custom throughput metric (higher is better; -metric names the
// b.ReportMetric unit, -max-metric-regress the allowed fractional DROP):
//
//	benchjson -compare BENCH_baseline.json -bench BenchmarkIngestToEmit -max-regress -1 -metric reports/s -max-metric-regress 0.25 BENCH_2026-07-28.json
//
// Benchmark names are normalised by stripping the trailing -<GOMAXPROCS>
// suffix so files from machines with different core counts line up; runs
// repeated with -count are collapsed to the repetition with the best
// (lowest) ns/op, the usual choice for regression gating because it is
// the least noisy summary of a benchmark's attainable speed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

func main() {
	var (
		in         = flag.String("in", "", "benchmark text input (default stdin)")
		out        = flag.String("out", "", "JSON output path (default stdout)")
		date       = flag.String("date", "", "date stamp for the JSON (default today, UTC)")
		compare    = flag.String("compare", "", "baseline JSON: compare mode instead of convert mode")
		benchMatch = flag.String("bench", "", "compare mode: substring of the benchmarks to gate (default all)")
		maxRegress = flag.Float64("max-regress", 0.20, "compare mode: allowed fractional ns/op regression (negative disables)")
		maxAllocs  = flag.Float64("max-allocs-regress", 0, "compare mode: allowed fractional allocs/op growth (0 disables)")
		metric     = flag.String("metric", "", "compare mode: custom metric unit to gate as a throughput (higher is better; empty disables)")
		maxMetric  = flag.Float64("max-metric-regress", 0.20, "compare mode: allowed fractional -metric drop")
	)
	flag.Parse()
	if err := run(*in, *out, *date, *compare, *benchMatch, *maxRegress, *maxAllocs, *metric, *maxMetric, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in, out, date, compare, benchMatch string, maxRegress, maxAllocs float64, metric string, maxMetric float64, args []string) error {
	if compare != "" {
		if len(args) != 1 {
			return fmt.Errorf("compare mode wants exactly one current JSON argument, got %d", len(args))
		}
		baseline, err := readFile(compare)
		if err != nil {
			return err
		}
		current, err := readFile(args[0])
		if err != nil {
			return err
		}
		report, failed := Compare(baseline, current, benchMatch, maxRegress, maxAllocs, metric, maxMetric)
		fmt.Print(report)
		if failed {
			return fmt.Errorf("benchmark regression beyond the gate (ns/op >%.0f%%, allocs/op >%.0f%%, %s >-%.0f%%)", maxRegress*100, maxAllocs*100, metric, maxMetric*100)
		}
		return nil
	}

	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	if date == "" {
		date = time.Now().UTC().Format("2006-01-02")
	}
	file, err := Parse(r, date)
	if err != nil {
		return err
	}
	if len(file.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	enc, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}
