package main

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// File is one BENCH_<date>.json: a snapshot of every benchmark's cost on
// one machine, the unit of the repository's performance trajectory.
type File struct {
	Schema int    `json:"schema"`
	Date   string `json:"date"`
	Go     string `json:"go"`
	// CPU is the benchmark run's `cpu:` header line. ns/op is only
	// comparable within one machine class, so Compare downgrades the
	// gate to informational when baseline and current CPUs differ.
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark's summary. For -count repetitions the
// repetition with the lowest ns/op wins (see the package comment).
type Benchmark struct {
	// Name is the benchmark name with the -<GOMAXPROCS> suffix stripped.
	Name string `json:"name"`
	// N is the iteration count of the kept repetition.
	N int64 `json:"n"`
	// NsPerOp is the kept repetition's nanoseconds per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp mirrors -benchmem / b.ReportAllocs output. It is a
	// pointer so a genuinely allocation-free benchmark (0 allocs/op) is
	// distinguishable from a run recorded without allocation data — the
	// allocation gate must fail a 0→N growth, not call it missing.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// BytesPerOp mirrors -benchmem output; 0 when absent.
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	// Metrics holds every custom b.ReportMetric unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchLine matches "BenchmarkName-8   3   12345 ns/op   4 extra/unit ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// procSuffix is the trailing -<GOMAXPROCS> go test appends to names.
var procSuffix = regexp.MustCompile(`-\d+$`)

// NormalizeName strips the -<GOMAXPROCS> suffix from a benchmark name so
// results from machines with different core counts compare by identity.
func NormalizeName(name string) string {
	return procSuffix.ReplaceAllString(name, "")
}

// Parse reads `go test -bench` text output and builds the JSON file
// structure, collapsing -count repetitions to the lowest-ns/op one.
func Parse(r io.Reader, date string) (*File, error) {
	best := map[string]*Benchmark{}
	var order []string
	cpu := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if c, ok := strings.CutPrefix(line, "cpu:"); ok {
			cpu = strings.TrimSpace(c)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b, err := parseLine(m)
		if err != nil {
			return nil, err
		}
		prev, ok := best[b.Name]
		if !ok {
			best[b.Name] = b
			order = append(order, b.Name)
			continue
		}
		if b.NsPerOp < prev.NsPerOp {
			best[b.Name] = b
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	f := &File{Schema: 1, Date: date, Go: runtime.Version(), CPU: cpu}
	for _, name := range order {
		f.Benchmarks = append(f.Benchmarks, *best[name])
	}
	return f, nil
}

func parseLine(m []string) (*Benchmark, error) {
	n, err := strconv.ParseInt(m[2], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("benchmark %s: bad iteration count %q", m[1], m[2])
	}
	b := &Benchmark{Name: NormalizeName(m[1]), N: n}
	fields := strings.Fields(m[3])
	if len(fields)%2 != 0 {
		return nil, fmt.Errorf("benchmark %s: odd value/unit fields %q", m[1], m[3])
	}
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("benchmark %s: bad value %q", m[1], fields[i])
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			a := v
			b.AllocsPerOp = &a
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}

// Compare gates current against baseline: every current benchmark whose
// normalised name contains match (all when match is empty) and exists in
// the baseline is checked for ns/op regression beyond maxRegress
// (negative disables the time gate) and, when maxAllocsRegress > 0, for
// allocs/op growth beyond that fraction. When metric is non-empty it
// names a custom b.ReportMetric unit (e.g. "reports/s") gated as a
// throughput: HIGHER is better, and a fractional drop beyond
// maxMetricRegress fails. The returned report lists every comparison;
// failed reports whether any regressed.
//
// Two situations downgrade the time gate to informational instead of
// failing, because ns/op is not comparable: benchmarks present on only
// one side, and a baseline recorded on a different CPU than the current
// run (the committed baseline seeds a new machine class until CI
// refreshes it on its own hardware). The allocation gate has no CPU
// escape hatch — allocs/op is a property of the code, not the machine —
// but is informational when either side lacks allocation data (e.g. a
// baseline recorded before b.ReportAllocs was added).
// Like ns/op, the throughput gate downgrades to informational across
// CPU classes and when either side lacks the metric.
func Compare(baseline, current *File, match string, maxRegress, maxAllocsRegress float64, metric string, maxMetricRegress float64) (report string, failed bool) {
	sameCPU := baseline.CPU == "" || current.CPU == "" || baseline.CPU == current.CPU
	base := map[string]Benchmark{}
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}
	var lines []string
	matched := 0
	for _, cur := range current.Benchmarks {
		if match != "" && !strings.Contains(cur.Name, match) {
			continue
		}
		old, ok := base[cur.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("  new       %-60s %12.0f ns/op (no baseline)", cur.Name, cur.NsPerOp))
			continue
		}
		matched++
		delta := (cur.NsPerOp - old.NsPerOp) / old.NsPerOp
		status := "ok"
		if maxRegress >= 0 && delta > maxRegress {
			status = "slower"
			if sameCPU {
				status = "REGRESSED"
				failed = true
			}
		}
		metricTxt := ""
		if metric != "" {
			oldV, okOld := old.Metrics[metric]
			curV, okCur := cur.Metrics[metric]
			switch {
			case !okOld || !okCur:
				metricTxt = fmt.Sprintf(", %s (no gate: missing data)", metric)
			default:
				mdelta := 0.0
				switch {
				case oldV > 0:
					mdelta = (curV - oldV) / oldV
				case curV > 0:
					mdelta = math.Inf(1)
				}
				metricTxt = fmt.Sprintf(", %s %.0f -> %.0f (%+.1f%%)", metric, oldV, curV, mdelta*100)
				if mdelta < -maxMetricRegress {
					status = "slower"
					if sameCPU {
						status = "REGRESSED"
						failed = true
					}
				}
			}
		}
		allocs := ""
		if maxAllocsRegress > 0 {
			switch {
			case old.AllocsPerOp == nil || cur.AllocsPerOp == nil:
				allocs = ", allocs (no gate: missing data)"
			default:
				oldA, curA := *old.AllocsPerOp, *cur.AllocsPerOp
				// From an allocation-free baseline any growth is an
				// unbounded regression.
				adelta := math.Inf(1)
				switch {
				case oldA > 0:
					adelta = (curA - oldA) / oldA
				case curA == 0:
					adelta = 0
				}
				allocs = fmt.Sprintf(", allocs %.0f -> %.0f /op (%+.1f%%)",
					oldA, curA, adelta*100)
				if adelta > maxAllocsRegress {
					status = "REGRESSED"
					failed = true
				}
			}
		}
		lines = append(lines, fmt.Sprintf("  %-9s %-60s %12.0f -> %12.0f ns/op (%+.1f%%)%s%s",
			status, cur.Name, old.NsPerOp, cur.NsPerOp, delta*100, metricTxt, allocs))
	}
	sort.Strings(lines)
	var sb strings.Builder
	fmt.Fprintf(&sb, "benchjson: baseline %s (%s, cpu %q) vs current %s (%s, cpu %q), gate >%.0f%% ns/op, >%.0f%% allocs/op on %q",
		baseline.Date, baseline.Go, baseline.CPU, current.Date, current.Go, current.CPU, maxRegress*100, maxAllocsRegress*100, match)
	if metric != "" {
		fmt.Fprintf(&sb, ", >-%.0f%% %s", maxMetricRegress*100, metric)
	}
	sb.WriteString("\n")
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteString("\n")
	}
	if matched == 0 {
		fmt.Fprintf(&sb, "benchjson: WARNING: no benchmark matched both files for %q — nothing gated (new machine class?)\n", match)
	}
	if !sameCPU {
		fmt.Fprintf(&sb, "benchjson: WARNING: baseline CPU %q != current CPU %q — ns/op not comparable, gate informational; refresh the baseline on this hardware\n",
			baseline.CPU, current.CPU)
	}
	return sb.String(), failed
}
