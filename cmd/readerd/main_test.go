package main

import "testing"

func TestValidateFlags(t *testing.T) {
	ok := func(name, listen, reader, word string, tags int, dist, pace float64) {
		t.Run(name, func(t *testing.T) {
			if err := validateFlags(listen, reader, word, tags, dist, pace); err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
	bad := func(name, listen, reader, word string, tags int, dist, pace float64) {
		t.Run(name, func(t *testing.T) {
			if err := validateFlags(listen, reader, word, tags, dist, pace); err == nil {
				t.Fatal("want error")
			}
		})
	}
	ok("defaults", "127.0.0.1:7011", "A", "clear", 1, 2, 1)
	ok("reader b lowercase", ":7011", "b", "go", 12, 3, 0)
	bad("zero tags", ":7011", "A", "go", 0, 2, 1)
	bad("negative tags", ":7011", "A", "go", -4, 2, 1)
	bad("too many tags", ":7011", "A", "go", 13, 2, 1)
	bad("bad reader", ":7011", "C", "go", 1, 2, 1)
	bad("empty listen", " ", "A", "go", 1, 2, 1)
	bad("empty word", ":7011", "A", "  ", 1, 2, 1)
	bad("zero dist", ":7011", "A", "go", 1, 0, 1)
	bad("negative pace", ":7011", "A", "go", 1, 2, -1)
}
