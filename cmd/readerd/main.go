// Command readerd runs a simulated RFID reader daemon: it generates a
// user's in-air handwriting, runs one reader's inventory against it, and
// streams the phase reports to TCP clients over the readerwire protocol —
// the simulated stand-in for a ThingMagic M6e streaming to the host.
//
// Usage:
//
//	readerd -listen 127.0.0.1:7011 -reader A -word hello -seed 1 -pace 1
//
// Run two daemons (reader A and reader B) with the same word/seed so their
// streams describe the same writing session; cmd/tracker consumes both.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rfidraw/internal/geom"
	"rfidraw/internal/handwriting"
	"rfidraw/internal/readerwire"
	"rfidraw/internal/rfid"
	"rfidraw/internal/sim"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:7011", "TCP listen address")
		reader = flag.String("reader", "A", "which reader to serve: A (wide pairs) or B (coarse pairs)")
		word   = flag.String("word", "clear", "word the simulated user writes")
		seed   = flag.Int64("seed", 1, "scenario seed (must match the other reader's)")
		dist   = flag.Float64("dist", 2, "user distance from the wall in metres")
		pace   = flag.Float64("pace", 1, "replay speed (1 = real time, 0 = unpaced)")
		nlos   = flag.Bool("nlos", false, "use the non-line-of-sight environment")
	)
	flag.Parse()
	if err := run(*listen, *reader, *word, *seed, *dist, *pace, *nlos); err != nil {
		fmt.Fprintln(os.Stderr, "readerd:", err)
		os.Exit(1)
	}
}

func run(listen, reader, word string, seed int64, dist, pace float64, nlos bool) error {
	prop := sim.LOS
	if nlos {
		prop = sim.NLOS
	}
	sc, err := sim.New(sim.Config{Prop: prop, Distance: dist, Seed: seed})
	if err != nil {
		return err
	}
	wr, err := sc.RunWord(word, geom.Vec2{X: 0.6, Z: 1.0}, handwriting.DefaultStyle())
	if err != nil {
		return err
	}

	// Rebuild this reader's report stream from the merged samples: each
	// sample carries the phases of both readers; filter to ours.
	var readerID int
	switch strings.ToUpper(reader) {
	case "A":
		readerID = 0
	case "B":
		readerID = 1
	default:
		return fmt.Errorf("unknown reader %q (want A or B)", reader)
	}
	var reports []rfid.Report
	for _, s := range wr.SamplesRF {
		for id, ph := range s.Phase {
			if (id-1)/4 != readerID {
				continue
			}
			reports = append(reports, rfid.Report{
				Time:      s.T,
				ReaderID:  readerID,
				AntennaID: id,
				EPC:       sc.Tag.EPC,
				PhaseRad:  ph,
			})
		}
	}
	dur := wr.Word.Traj.Duration() + 100*time.Millisecond

	src := &readerwire.InventorySource{
		Announce: readerwire.Hello{
			Proto:         readerwire.ProtoVersion,
			ReaderID:      uint8(readerID),
			AntennaCount:  4,
			SweepInterval: 25 * time.Millisecond,
		},
		AllReports: reports,
	}
	srv, err := readerwire.NewServer(listen, src, pace)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("readerd: reader %s serving %d reports of %q on %s (EPC %s)\n",
		reader, len(reports), word, srv.Addr(), sc.Tag.EPC)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return srv.Serve(ctx, dur)
}
