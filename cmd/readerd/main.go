// Command readerd runs a simulated RFID reader daemon: it generates one or
// more users writing in the air, runs one reader's inventory against their
// tags, and streams the phase reports to TCP clients over the readerwire
// protocol — the simulated stand-in for a ThingMagic M6e streaming to the
// host.
//
// Usage:
//
//	readerd -listen 127.0.0.1:7011 -reader A -word hello -tags 3 -seed 1 -pace 1
//
// Run two daemons (reader A and reader B) with the same word/tags/seed so
// their streams describe the same writing session; cmd/tracker consumes
// both and traces every tag concurrently. With -tags N, Gen-2 singulation
// splits each sweep's airtime round-robin across the tags, so the Hello
// announces the per-tag sweep cadence (N × the raw sweep interval).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rfidraw/internal/geom"
	"rfidraw/internal/readerwire"
	"rfidraw/internal/sim"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:7011", "TCP listen address")
		reader = flag.String("reader", "A", "which reader to serve: A (wide pairs) or B (coarse pairs)")
		word   = flag.String("word", "clear", "first word the simulated users write; extra users cycle a built-in list")
		tags   = flag.Int("tags", 1, "how many users write simultaneously, one tag each")
		seed   = flag.Int64("seed", 1, "scenario seed (must match the other reader's)")
		dist   = flag.Float64("dist", 2, "user distance from the wall in metres")
		pace   = flag.Float64("pace", 1, "replay speed (1 = real time, 0 = unpaced)")
		nlos   = flag.Bool("nlos", false, "use the non-line-of-sight environment")
	)
	flag.Parse()
	if err := validateFlags(*listen, *reader, *word, *tags, *dist, *pace); err != nil {
		fmt.Fprintln(os.Stderr, "readerd: invalid flags:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*listen, *reader, *word, *tags, *seed, *dist, *pace, *nlos); err != nil {
		fmt.Fprintln(os.Stderr, "readerd:", err)
		os.Exit(1)
	}
}

// validateFlags rejects malformed flag combinations before the scenario is
// built or the listener opened.
func validateFlags(listen, reader, word string, tags int, dist, pace float64) error {
	if strings.TrimSpace(listen) == "" {
		return fmt.Errorf("-listen must name a TCP address")
	}
	switch strings.ToUpper(reader) {
	case "A", "B":
	default:
		return fmt.Errorf("-reader %q must be A or B", reader)
	}
	if strings.TrimSpace(word) == "" {
		return fmt.Errorf("-word must not be empty")
	}
	if tags < 1 {
		return fmt.Errorf("-tags %d needs at least one tag", tags)
	}
	// The start-position grid in run has 12 distinct slots; more writers
	// than that would overlap in space.
	if tags > 12 {
		return fmt.Errorf("-tags %d exceeds the 12 supported simultaneous writers", tags)
	}
	if dist <= 0 {
		return fmt.Errorf("-dist %v must be a positive distance in metres", dist)
	}
	if pace < 0 {
		return fmt.Errorf("-pace %v must be ≥ 0 (0 = unpaced)", pace)
	}
	return nil
}

// extraWords cycles for users beyond the first; short words keep multi-tag
// sessions overlapping in time.
var extraWords = []string{"go", "hi", "on", "it", "up", "at"}

func run(listen, reader, word string, tags int, seed int64, dist, pace float64, nlos bool) error {
	if tags < 1 {
		return fmt.Errorf("need at least one tag, got %d", tags)
	}
	// The start-position grid below has 12 distinct slots; more writers
	// than that would overlap in space.
	if tags > 12 {
		return fmt.Errorf("at most 12 simultaneous writers supported, got %d", tags)
	}
	prop := sim.LOS
	if nlos {
		prop = sim.NLOS
	}
	sc, err := sim.New(sim.Config{Prop: prop, Distance: dist, Seed: seed})
	if err != nil {
		return err
	}
	// Lay the writers out on a grid so their strokes do not collide; every
	// daemon with the same seed/tags derives the identical session.
	texts := make([]string, tags)
	starts := make([]geom.Vec2, tags)
	for i := range texts {
		if i == 0 {
			texts[i] = word
		} else {
			texts[i] = extraWords[(i-1)%len(extraWords)]
		}
		starts[i] = geom.Vec2{
			X: 0.35 + 0.45*float64(i%4),
			Z: 0.55 + 0.5*float64(i/4%3),
		}
	}
	run, err := sc.RunWords(texts, starts)
	if err != nil {
		return err
	}

	var readerID int
	switch strings.ToUpper(reader) {
	case "A":
		readerID = 0
	case "B":
		readerID = 1
	default:
		return fmt.Errorf("unknown reader %q (want A or B)", reader)
	}
	reports := run.ReportsRF[readerID]
	var dur time.Duration
	for _, w := range run.Words {
		if d := w.Traj.Duration(); d > dur {
			dur = d
		}
	}
	dur += 100 * time.Millisecond

	src := &readerwire.InventorySource{
		Announce: readerwire.Hello{
			Proto:        readerwire.ProtoVersion,
			ReaderID:     uint8(readerID),
			AntennaCount: 4,
			// Per-tag cadence: singulation splits airtime across tags.
			SweepInterval: run.SweepInterval * time.Duration(tags),
		},
		AllReports: reports,
	}
	srv, err := readerwire.NewServer(listen, src, pace)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("readerd: reader %s serving %d reports of %d tag(s) on %s\n",
		reader, len(reports), tags, srv.Addr())
	for i, tag := range run.Tags {
		fmt.Printf("readerd:   tag %s writes %q\n", tag.EPC, texts[i])
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return srv.Serve(ctx, dur)
}
