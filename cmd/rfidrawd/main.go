// Command rfidrawd is the session-serving daemon: the long-lived host
// side of the virtual touch screen. It exposes
//
//   - a JSON control API and chunked NDJSON live streams on -http
//     (POST/GET/DELETE /v1/sessions, GET /v1/sessions/{id}/stream),
//   - a reader ingest gateway on -ingest (readerwire streams prefixed
//     with a "RFIDRAWD/1 <session-id>" line),
//   - observability on /healthz and /metrics.
//
// Each session binds its writers' tags to an engine shard group sharing
// the daemon's precomputed positioner. Beyond -max-sessions the daemon
// sheds session creates with HTTP 503 instead of degrading live ones;
// slow stream consumers lose their oldest events instead of stalling the
// trackers.
//
// Usage:
//
//	rfidrawd -http 127.0.0.1:8090 -ingest 127.0.0.1:7070 -dist 2
//
// With -data-dir the daemon is durable: every session's resequenced
// report stream is recorded in a per-session write-ahead log, a restart
// rehydrates retained sessions in a "recovered" state, POST
// /v1/sessions/{id}/retrace re-traces any recorded session (optionally
// under a different search config), and GET .../stream?from=seq serves
// late subscribers the recorded history before splicing them live.
//
// Drive it with cmd/loadgen, or point examples/streaming and
// examples/multiuser at it with their -daemon flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rfidraw"
)

func main() {
	var (
		httpAddr   = flag.String("http", "127.0.0.1:8090", "control/streaming API listen address")
		ingestAddr = flag.String("ingest", "127.0.0.1:7070", "reader ingest gateway listen address")
		dist       = flag.Float64("dist", 2, "writing plane distance in metres")
		shards     = flag.Int("session-shards", 1, "engine worker shards per session")
		maxSess    = flag.Int("max-sessions", 128, "admission-control cap on live sessions")
		maxSubs    = flag.Int("max-subscribers", 16, "stream subscribers per session")
		queue      = flag.Int("queue", 256, "per-subscriber bounded event queue")
		idle       = flag.Duration("idle", 2*time.Minute, "idle session expiry")
		reorder    = flag.Duration("reorder", 25*time.Millisecond, "cross-reader resequencing window")
		maxAcquire = flag.Int("max-acquire", 400, "per-tag warmup sample buffer bound (sweeps, ≥ the 4-sweep warmup)")
		dataDir    = flag.String("data-dir", "", "write-ahead log directory: sessions become durable, crash-recoverable and re-traceable (empty disables)")
		walSync    = flag.Int("wal-sync", 64, "fsync the session log every N report appends (1 = every append; drains always sync)")
	)
	flag.Parse()
	if err := validateFlags(*httpAddr, *ingestAddr, *dist, *shards, *maxSess, *maxSubs, *queue, *idle, *reorder, *maxAcquire, *walSync); err != nil {
		fmt.Fprintln(os.Stderr, "rfidrawd: invalid flags:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*httpAddr, *ingestAddr, *dist, *shards, *maxSess, *maxSubs, *queue, *idle, *reorder, *maxAcquire, *dataDir, *walSync); err != nil {
		fmt.Fprintln(os.Stderr, "rfidrawd:", err)
		os.Exit(1)
	}
}

// validateFlags rejects malformed combinations before anything binds.
func validateFlags(httpAddr, ingestAddr string, dist float64, shards, maxSess, maxSubs, queue int, idle, reorder time.Duration, maxAcquire, walSync int) error {
	if strings.TrimSpace(httpAddr) == "" {
		return fmt.Errorf("-http must name a TCP address")
	}
	if strings.TrimSpace(ingestAddr) == "" {
		return fmt.Errorf("-ingest must name a TCP address")
	}
	if strings.TrimSpace(httpAddr) == strings.TrimSpace(ingestAddr) {
		return fmt.Errorf("-http and -ingest must differ (both %q)", httpAddr)
	}
	if dist <= 0 {
		return fmt.Errorf("-dist %v must be a positive distance in metres", dist)
	}
	if shards < 1 {
		return fmt.Errorf("-session-shards %d needs at least one shard", shards)
	}
	if maxSess < 1 {
		return fmt.Errorf("-max-sessions %d needs at least one session", maxSess)
	}
	if maxSubs < 1 {
		return fmt.Errorf("-max-subscribers %d needs at least one subscriber", maxSubs)
	}
	if queue < 1 {
		return fmt.Errorf("-queue %d needs at least one slot", queue)
	}
	if idle <= 0 {
		return fmt.Errorf("-idle %v must be positive", idle)
	}
	if reorder <= 0 {
		return fmt.Errorf("-reorder %v must be positive", reorder)
	}
	if maxAcquire < 1 {
		return fmt.Errorf("-max-acquire %d needs at least one buffered sweep", maxAcquire)
	}
	if walSync < 1 {
		return fmt.Errorf("-wal-sync %d must be at least 1 (sync every append)", walSync)
	}
	return nil
}

func run(httpAddr, ingestAddr string, dist float64, shards, maxSess, maxSubs, queue int, idle, reorder time.Duration, maxAcquire int, dataDir string, walSync int) error {
	sys, err := rfidraw.New(rfidraw.Config{PlaneDistanceM: dist})
	if err != nil {
		return err
	}
	defer sys.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return sys.Serve(ctx, rfidraw.ServeConfig{
		HTTPAddr:         httpAddr,
		IngestAddr:       ingestAddr,
		MaxSessions:      maxSess,
		MaxSubscribers:   maxSubs,
		SubscriberQueue:  queue,
		SessionShards:    shards,
		MaxAcquireBuffer: maxAcquire,
		IdleTimeout:      idle,
		ReorderWindow:    reorder,
		DataDir:          dataDir,
		WALSyncEvery:     walSync,
		Logf:             log.Printf,
	})
}
