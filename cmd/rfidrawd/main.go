// Command rfidrawd is the session-serving daemon: the long-lived host
// side of the virtual touch screen. It exposes
//
//   - a JSON control API and chunked NDJSON live streams on -http
//     (POST/GET/DELETE /v1/sessions, GET /v1/sessions/{id}/stream),
//   - an operator control plane (GET /v1/control, POST
//     /v1/control/config, POST /v1/sessions/{id}/park|resume|drain),
//   - a reader ingest gateway on -ingest (readerwire streams prefixed
//     with a "RFIDRAWD/1 <session-id>" line),
//   - observability on /healthz and /metrics: per-stage latency
//     histograms (rfidrawd_stage_seconds), end-to-end report latency,
//     sampled stage spans (GET /v1/sessions/{id}/trace, cadence set by
//     the control plane's trace_sample_n knob) and per-session
//     diagnostic timelines (GET /v1/sessions/{id}/events),
//   - opt-in runtime profiling on -pprof-addr (net/http/pprof).
//
// Each session binds its writers' tags to an engine shard group sharing
// the daemon's precomputed positioner. Admission is demand-driven: each
// session's cost (search evaluations/s, WAL bytes/s, late-report rate,
// subscriber backlog) rolls into a node congestion score, and at
// -shed-at the daemon refuses new sessions with HTTP 429 + Retry-After;
// at -park-at it parks the cheapest durable sessions (engine reclaimed,
// record kept resumable) until the score recovers. Beyond -max-sessions
// creates are shed with HTTP 503 regardless of score; slow stream
// consumers lose their oldest events instead of stalling the trackers.
//
// Usage:
//
//	rfidrawd -http 127.0.0.1:8090 -ingest 127.0.0.1:7070 -dist 2
//
// With -data-dir the daemon is durable: every session's resequenced
// report stream is recorded in a per-session write-ahead log, a restart
// rehydrates retained sessions in a "recovered" state, POST
// /v1/sessions/{id}/retrace re-traces any recorded session (optionally
// under a different search config), and GET .../stream?from=seq serves
// late subscribers the recorded history before splicing them live.
//
// Logs are structured (log/slog): -log-level gates severity (mutable at
// runtime via POST /v1/control/config {"log_level": ...}), -log-format
// picks text or json rendering.
//
// Drive it with cmd/loadgen, or point examples/streaming and
// examples/multiuser at it with their -daemon flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rfidraw"
	"rfidraw/internal/obs"
)

// daemonFlags is every tunable the command line exposes, validated as
// one unit before anything binds.
type daemonFlags struct {
	httpAddr   string
	ingestAddr string
	dist       float64
	shards     int
	maxSess    int
	maxSubs    int
	queue      int
	idle       time.Duration
	retain     time.Duration
	reorder    time.Duration
	maxAcquire int
	dataDir    string
	walSync    int

	evalCapacity      float64
	walCapacity       float64
	lateCapacity      float64
	backlogCapacity   float64
	downgradeCapacity float64
	shedAt            float64
	parkAt            float64

	traceSampleN int
	logLevel     string
	logFormat    string
	pprofAddr    string
	version      bool
}

func main() {
	var f daemonFlags
	flag.StringVar(&f.httpAddr, "http", "127.0.0.1:8090", "control/streaming API listen address")
	flag.StringVar(&f.ingestAddr, "ingest", "127.0.0.1:7070", "reader ingest gateway listen address")
	flag.Float64Var(&f.dist, "dist", 2, "writing plane distance in metres")
	flag.IntVar(&f.shards, "session-shards", 1, "engine worker shards per session")
	flag.IntVar(&f.maxSess, "max-sessions", 128, "hard admission cap on live sessions (503 beyond it)")
	flag.IntVar(&f.maxSubs, "max-subscribers", 16, "stream subscribers per session")
	flag.IntVar(&f.queue, "queue", 256, "per-subscriber bounded event queue")
	flag.DurationVar(&f.idle, "idle", 2*time.Minute, "idle session expiry")
	flag.DurationVar(&f.retain, "retain", 0, "forget parked session records untouched this long (0 = retain forever)")
	flag.DurationVar(&f.reorder, "reorder", 25*time.Millisecond, "cross-reader resequencing window")
	flag.IntVar(&f.maxAcquire, "max-acquire", 400, "per-tag warmup sample buffer bound (sweeps, ≥ the 4-sweep warmup)")
	flag.StringVar(&f.dataDir, "data-dir", "", "write-ahead log directory: sessions become durable, crash-recoverable and re-traceable (empty disables)")
	flag.IntVar(&f.walSync, "wal-sync", 64, "fsync the session log every N report appends (1 = every append; drains always sync)")
	flag.Float64Var(&f.evalCapacity, "eval-capacity", 0, "search-evaluation budget per second for the congestion score (0 = default)")
	flag.Float64Var(&f.walCapacity, "wal-capacity", 0, "WAL write budget in bytes per second for the congestion score (0 = default)")
	flag.Float64Var(&f.lateCapacity, "late-capacity", 0, "tolerable late-report rate per second for the congestion score (0 = default)")
	flag.Float64Var(&f.backlogCapacity, "backlog-capacity", 0, "tolerable worst subscriber queue fill fraction (0 = default)")
	flag.Float64Var(&f.downgradeCapacity, "downgrade-capacity", 0, "tolerable adaptive tier-downgrade rate per second for the congestion score (0 = default)")
	flag.Float64Var(&f.shedAt, "shed-at", 0, "congestion score refusing new sessions with 429 (0 = default 0.9, negative disables)")
	flag.Float64Var(&f.parkAt, "park-at", 0, "congestion score parking cheapest durable sessions (0 = default 0.75, negative disables)")
	flag.IntVar(&f.traceSampleN, "trace-sample-n", 0, "record a full stage span for 1-in-N reports per session (0 disables; mutable at runtime)")
	flag.StringVar(&f.logLevel, "log-level", "info", "log severity gate: debug, info, warn or error (mutable at runtime via the control API)")
	flag.StringVar(&f.logFormat, "log-format", "text", "log rendering: text or json")
	flag.StringVar(&f.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (empty disables)")
	flag.BoolVar(&f.version, "version", false, "print version and exit")
	flag.Parse()
	if f.version {
		fmt.Printf("rfidrawd %s (%s)\n", obs.BuildVersion(), obs.GoVersion())
		return
	}
	if err := f.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "rfidrawd: invalid flags:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(f); err != nil {
		fmt.Fprintln(os.Stderr, "rfidrawd:", err)
		os.Exit(1)
	}
}

// validate rejects malformed combinations before anything binds.
func (f daemonFlags) validate() error {
	if strings.TrimSpace(f.httpAddr) == "" {
		return fmt.Errorf("-http must name a TCP address")
	}
	if strings.TrimSpace(f.ingestAddr) == "" {
		return fmt.Errorf("-ingest must name a TCP address")
	}
	if strings.TrimSpace(f.httpAddr) == strings.TrimSpace(f.ingestAddr) {
		return fmt.Errorf("-http and -ingest must differ (both %q)", f.httpAddr)
	}
	if f.dist <= 0 {
		return fmt.Errorf("-dist %v must be a positive distance in metres", f.dist)
	}
	if f.shards < 1 {
		return fmt.Errorf("-session-shards %d needs at least one shard", f.shards)
	}
	if f.maxSess < 1 {
		return fmt.Errorf("-max-sessions %d needs at least one session", f.maxSess)
	}
	if f.maxSubs < 1 {
		return fmt.Errorf("-max-subscribers %d needs at least one subscriber", f.maxSubs)
	}
	if f.queue < 1 {
		return fmt.Errorf("-queue %d needs at least one slot", f.queue)
	}
	if f.idle <= 0 {
		return fmt.Errorf("-idle %v must be positive", f.idle)
	}
	if f.retain < 0 {
		return fmt.Errorf("-retain %v must be zero (forever) or positive", f.retain)
	}
	if f.reorder <= 0 {
		return fmt.Errorf("-reorder %v must be positive", f.reorder)
	}
	if f.maxAcquire < 1 {
		return fmt.Errorf("-max-acquire %d needs at least one buffered sweep", f.maxAcquire)
	}
	if f.walSync < 1 {
		return fmt.Errorf("-wal-sync %d must be at least 1 (sync every append)", f.walSync)
	}
	if f.evalCapacity < 0 || f.walCapacity < 0 || f.lateCapacity < 0 || f.downgradeCapacity < 0 {
		return fmt.Errorf("capacity budgets must be non-negative (0 = default)")
	}
	if f.backlogCapacity < 0 || f.backlogCapacity > 1 {
		return fmt.Errorf("-backlog-capacity %v must be a fraction in [0, 1]", f.backlogCapacity)
	}
	if f.shedAt > 0 && f.parkAt > 0 && f.parkAt >= f.shedAt {
		return fmt.Errorf("-park-at %v should sit below -shed-at %v: parking is the relief valve before shedding", f.parkAt, f.shedAt)
	}
	if f.traceSampleN < 0 {
		return fmt.Errorf("-trace-sample-n %d must be non-negative (0 disables)", f.traceSampleN)
	}
	switch f.logFormat {
	case "text", "json":
	default:
		return fmt.Errorf("-log-format %q must be text or json", f.logFormat)
	}
	switch f.logLevel {
	case "debug", "info", "warn", "warning", "error":
	default:
		return fmt.Errorf("-log-level %q must be debug, info, warn or error", f.logLevel)
	}
	return nil
}

// buildLogger assembles the daemon's structured logger: a level gate the
// control plane can mutate at runtime, rendered as text or JSON on
// stderr.
func buildLogger(f daemonFlags) (*slog.Logger, *slog.LevelVar, error) {
	level := new(slog.LevelVar)
	switch f.logLevel {
	case "debug":
		level.Set(slog.LevelDebug)
	case "info":
		level.Set(slog.LevelInfo)
	case "warn", "warning":
		level.Set(slog.LevelWarn)
	case "error":
		level.Set(slog.LevelError)
	default:
		return nil, nil, fmt.Errorf("unknown log level %q", f.logLevel)
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if f.logFormat == "json" {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	return slog.New(h), level, nil
}

// servePprof exposes the runtime profiling endpoints on their own
// listener, so production profiling never shares a port with the public
// API.
func servePprof(ctx context.Context, addr string, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	logger.Info("pprof listening", "addr", addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		logger.Error("pprof serve failed", "err", err)
	}
}

func run(f daemonFlags) error {
	logger, level, err := buildLogger(f)
	if err != nil {
		return err
	}
	sys, err := rfidraw.New(rfidraw.Config{PlaneDistanceM: f.dist})
	if err != nil {
		return err
	}
	defer sys.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if f.pprofAddr != "" {
		go servePprof(ctx, f.pprofAddr, logger)
	}
	logger.Info("rfidrawd starting", "version", obs.BuildVersion(), "go", obs.GoVersion())
	return sys.Serve(ctx, rfidraw.ServeConfig{
		HTTPAddr:         f.httpAddr,
		IngestAddr:       f.ingestAddr,
		MaxSessions:      f.maxSess,
		MaxSubscribers:   f.maxSubs,
		SubscriberQueue:  f.queue,
		SessionShards:    f.shards,
		MaxAcquireBuffer: f.maxAcquire,
		IdleTimeout:      f.idle,
		RetainFor:        f.retain,
		ReorderWindow:    f.reorder,
		DataDir:          f.dataDir,
		WALSyncEvery:     f.walSync,
		Capacity: rfidraw.CostCapacity{
			SearchEvalsPerSec: f.evalCapacity,
			WALBytesPerSec:    f.walCapacity,
			LatePerSec:        f.lateCapacity,
			Backlog:           f.backlogCapacity,
			DowngradesPerSec:  f.downgradeCapacity,
		},
		ShedThreshold: f.shedAt,
		ParkThreshold: f.parkAt,
		TraceSampleN:  f.traceSampleN,
		Logger:        logger,
		LogLevel:      level,
	})
}
