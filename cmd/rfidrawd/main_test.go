package main

import (
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	ok := func() []any {
		return []any{"127.0.0.1:8090", "127.0.0.1:7070", 2.0, 1, 128, 16, 256, 2 * time.Minute, 25 * time.Millisecond, 400, 64}
	}
	call := func(args []any) error {
		return validateFlags(args[0].(string), args[1].(string), args[2].(float64),
			args[3].(int), args[4].(int), args[5].(int), args[6].(int),
			args[7].(time.Duration), args[8].(time.Duration), args[9].(int), args[10].(int))
	}
	if err := call(ok()); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	cases := []struct {
		name string
		idx  int
		val  any
	}{
		{"empty http", 0, "  "},
		{"empty ingest", 1, ""},
		{"same addr", 1, "127.0.0.1:8090"},
		{"bad dist", 2, -1.0},
		{"zero shards", 3, 0},
		{"zero sessions", 4, 0},
		{"zero subscribers", 5, 0},
		{"zero queue", 6, 0},
		{"zero idle", 7, time.Duration(0)},
		{"zero reorder", 8, time.Duration(0)},
		{"zero max-acquire", 9, 0},
		{"zero wal-sync", 10, 0},
	}
	for _, tc := range cases {
		args := ok()
		args[tc.idx] = tc.val
		if err := call(args); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
