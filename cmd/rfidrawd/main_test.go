package main

import (
	"testing"
	"time"
)

func okFlags() daemonFlags {
	return daemonFlags{
		httpAddr:   "127.0.0.1:8090",
		ingestAddr: "127.0.0.1:7070",
		dist:       2.0,
		shards:     1,
		maxSess:    128,
		maxSubs:    16,
		queue:      256,
		idle:       2 * time.Minute,
		reorder:    25 * time.Millisecond,
		maxAcquire: 400,
		walSync:    64,
		logLevel:   "info",
		logFormat:  "text",
	}
}

func TestValidateFlags(t *testing.T) {
	if err := okFlags().validate(); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*daemonFlags)
	}{
		{"empty http", func(f *daemonFlags) { f.httpAddr = "  " }},
		{"empty ingest", func(f *daemonFlags) { f.ingestAddr = "" }},
		{"same addr", func(f *daemonFlags) { f.ingestAddr = "127.0.0.1:8090" }},
		{"bad dist", func(f *daemonFlags) { f.dist = -1.0 }},
		{"zero shards", func(f *daemonFlags) { f.shards = 0 }},
		{"zero sessions", func(f *daemonFlags) { f.maxSess = 0 }},
		{"zero subscribers", func(f *daemonFlags) { f.maxSubs = 0 }},
		{"zero queue", func(f *daemonFlags) { f.queue = 0 }},
		{"zero idle", func(f *daemonFlags) { f.idle = 0 }},
		{"negative retain", func(f *daemonFlags) { f.retain = -time.Second }},
		{"zero reorder", func(f *daemonFlags) { f.reorder = 0 }},
		{"zero max-acquire", func(f *daemonFlags) { f.maxAcquire = 0 }},
		{"zero wal-sync", func(f *daemonFlags) { f.walSync = 0 }},
		{"negative eval capacity", func(f *daemonFlags) { f.evalCapacity = -1 }},
		{"negative wal capacity", func(f *daemonFlags) { f.walCapacity = -1 }},
		{"negative late capacity", func(f *daemonFlags) { f.lateCapacity = -1 }},
		{"negative downgrade capacity", func(f *daemonFlags) { f.downgradeCapacity = -1 }},
		{"backlog over one", func(f *daemonFlags) { f.backlogCapacity = 1.5 }},
		{"park above shed", func(f *daemonFlags) { f.shedAt = 0.5; f.parkAt = 0.9 }},
		{"negative trace sample", func(f *daemonFlags) { f.traceSampleN = -1 }},
		{"bad log format", func(f *daemonFlags) { f.logFormat = "xml" }},
		{"bad log level", func(f *daemonFlags) { f.logLevel = "shouting" }},
	}
	for _, tc := range cases {
		f := okFlags()
		tc.mut(&f)
		if err := f.validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestValidateFlagsPolicyToggles: 0 means "use the default" and
// negative disables for both thresholds — all must validate.
func TestValidateFlagsPolicyToggles(t *testing.T) {
	for _, v := range []float64{0, -1, 0.5} {
		f := okFlags()
		f.shedAt = v
		f.parkAt = v / 2
		if err := f.validate(); err != nil {
			t.Errorf("shed-at %v: %v", v, err)
		}
	}
	f := okFlags()
	f.retain = time.Hour
	f.backlogCapacity = 1
	if err := f.validate(); err != nil {
		t.Errorf("retain+backlog: %v", err)
	}
}
